package topkclean

import (
	"context"
	"errors"
	"math"
	"testing"
)

// engineSyntheticDB builds a mid-sized synthetic database for engine and
// cancellation tests.
func engineSyntheticDB(t testing.TB, xtuples int) *Database {
	t.Helper()
	cfg := DefaultSyntheticConfig()
	cfg.NumXTuples = xtuples
	db, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEngineAnswersMatchLegacyEvaluate(t *testing.T) {
	db := paperUDB1(t)
	eng, err := New(db, WithK(2), WithPTKThreshold(0.4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Answers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Evaluate(db, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if FormatScored(res.PTK) != FormatScored(legacy.PTK) {
		t.Fatalf("PTK: engine %s, legacy %s", FormatScored(res.PTK), FormatScored(legacy.PTK))
	}
	if FormatRanked(res.UKRanks) != FormatRanked(legacy.UKRanks) {
		t.Fatalf("UKRanks: engine %s, legacy %s", FormatRanked(res.UKRanks), FormatRanked(legacy.UKRanks))
	}
	if FormatScored(res.GlobalTopK) != FormatScored(legacy.GlobalTopK) {
		t.Fatal("GlobalTopK disagrees with legacy Evaluate")
	}
	if math.Abs(res.Quality-legacy.Quality) > 1e-12 {
		t.Fatalf("quality: engine %v, legacy %v", res.Quality, legacy.Quality)
	}
	if res.K != 2 || res.Threshold != 0.4 {
		t.Fatalf("result metadata: k=%d threshold=%v", res.K, res.Threshold)
	}
}

// TestEngineMemoizesSharedPass is the session-reuse contract: every method
// of one engine hands back the identical RankInfo pointer for the same k,
// proving the PSR pass ran once.
func TestEngineMemoizesSharedPass(t *testing.T) {
	db := paperUDB1(t)
	eng, err := New(db, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	info, err := eng.RankInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := eng.Answers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Answers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eng.QualityEvaluation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	spec := UniformCleaningSpec(db.NumGroups(), 1, 0.8)
	plan, cctx, err := eng.PlanCleaning(ctx, "greedy", spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Fatal("greedy plan on udb1 should clean something")
	}
	if res1.Info != info || res2.Info != info {
		t.Fatal("Answers did not reuse the memoized RankInfo pointer")
	}
	if ev.Info != info {
		t.Fatal("QualityEvaluation did not reuse the memoized RankInfo pointer")
	}
	if cctx.Eval != ev || cctx.Eval.Info != info {
		t.Fatal("PlanCleaning did not reuse the memoized evaluation")
	}
	if res1.Eval != ev {
		t.Fatal("Answers carries a different evaluation than QualityEvaluation")
	}
}

// TestEngineLightThenFullUpgrade: quality-only use runs the cheaper
// top-k-only pass; the first Answers (which needs rank-h probabilities for
// U-kRanks) upgrades the memoized state in place, and everything after
// shares the upgraded pointer.
func TestEngineLightThenFullUpgrade(t *testing.T) {
	db := paperUDB1(t)
	eng, err := New(db, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q, err := eng.Quality(ctx) // light pass
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Answers(ctx) // forces the full pass
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Quality-q) > 1e-12 {
		t.Fatalf("light quality %v, full quality %v", q, res.Quality)
	}
	info, err := eng.RankInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eng.QualityEvaluation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info != info || res.Eval != ev {
		t.Fatal("post-upgrade state not shared across methods")
	}
}

func TestEngineInvalidateRecomputes(t *testing.T) {
	db := paperUDB1(t)
	eng, err := New(db, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	before, err := eng.RankInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng.Invalidate()
	after, err := eng.RankInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("Invalidate should drop the memoized pass")
	}
}

func TestEngineConcurrentAnswersSingleFlight(t *testing.T) {
	db := engineSyntheticDB(t, 300)
	eng, err := New(db, WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	infos := make([]*RankInfo, goroutines)
	errs := make([]error, goroutines)
	done := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			res, err := eng.Answers(context.Background())
			if err != nil {
				errs[g] = err
			} else {
				infos[g] = res.Info
			}
			done <- g
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if infos[g] != infos[0] {
			t.Fatal("concurrent Answers saw different RankInfo pointers; the pass ran more than once")
		}
	}
}

func TestEngineQualityMatchesLegacy(t *testing.T) {
	db := engineSyntheticDB(t, 100)
	eng, err := New(db, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Quality(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Quality(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("engine quality %v, legacy %v", got, want)
	}
}

func TestEngineVerifyImprovement(t *testing.T) {
	db := paperUDB1(t)
	eng, err := New(db, WithK(2), WithSeed(7), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := UniformCleaningSpec(db.NumGroups(), 1, 0.9)
	plan, cctx, err := eng.PlanCleaning(ctx, "dp", spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	analytical, simulated, err := eng.VerifyImprovement(ctx, cctx, plan, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if analytical <= 0 {
		t.Fatalf("analytical improvement %v, want > 0", analytical)
	}
	if math.Abs(analytical-simulated) > 0.15 {
		t.Fatalf("analytical %v and simulated %v diverge", analytical, simulated)
	}
}

func TestEngineAdaptiveAndMinBudget(t *testing.T) {
	db := paperUDB1(t)
	eng, err := New(db, WithK(2), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := UniformCleaningSpec(db.NumGroups(), 1, 0.9)
	cctx, err := eng.CleaningContext(ctx, spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.AdaptiveCleaning(ctx, cctx, "greedy", nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Improvement < 0 {
		t.Fatalf("adaptive improvement %v, want >= 0", out.Improvement)
	}
	target := cctx.Eval.S / 2
	budget, plan, err := eng.MinBudgetForTarget(ctx, cctx, target, 10000, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 || len(plan) == 0 {
		t.Fatalf("min budget %d plan %v", budget, plan)
	}
	if _, _, err := eng.MinBudgetForTarget(ctx, cctx, target, 10000, "no-such-planner"); !errors.Is(err, ErrUnknownPlanner) {
		t.Fatalf("unknown planner: got %v", err)
	}
	// Randomized planners break the binary search's monotonicity
	// precondition and the re-planning loop's independence; both engine
	// methods must reject them like the legacy entry points do.
	if _, _, err := eng.MinBudgetForTarget(ctx, cctx, target, 10000, "randu"); err == nil {
		t.Fatal("MinBudgetForTarget must reject randomized planners")
	}
	if _, err := eng.AdaptiveCleaning(ctx, cctx, "randp", nil, 5); err == nil {
		t.Fatal("AdaptiveCleaning must reject randomized planners")
	}
}

// TestEvaluateKeepsUnvalidatedThresholdDomain: the deprecated Evaluate
// always accepted any threshold; routing it through the engine must not
// narrow that domain.
func TestEvaluateKeepsUnvalidatedThresholdDomain(t *testing.T) {
	db := paperUDB1(t)
	res, err := Evaluate(db, 2, 1.5)
	if err != nil {
		t.Fatalf("threshold 1.5: %v", err)
	}
	if len(res.PTK) != 0 {
		t.Fatalf("threshold above 1 should yield an empty PT-k answer, got %s", FormatScored(res.PTK))
	}
	if res.Threshold != 1.5 {
		t.Fatalf("Threshold = %v, want the caller's 1.5", res.Threshold)
	}
	neg, err := Evaluate(db, 2, -1)
	if err != nil {
		t.Fatalf("threshold -1: %v", err)
	}
	if len(neg.PTK) == 0 {
		t.Fatal("negative threshold should admit every tuple with nonzero top-k probability")
	}
}

// TestCancellationAbortsPlanners drives the context threading through the
// DP, Greedy, and Monte-Carlo hot loops: a cancelled context must abort
// promptly with ctx.Err() everywhere.
func TestCancellationAbortsPlanners(t *testing.T) {
	db := engineSyntheticDB(t, 400)
	eng, err := New(db, WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	spec := UniformCleaningSpec(db.NumGroups(), 1, 0.5)
	cctx, err := eng.CleaningContext(context.Background(), spec, 200)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	for _, name := range Planners() {
		p, err := LookupPlanner(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Plan(cancelled, cctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("planner %q with cancelled context: got %v, want context.Canceled", name, err)
		}
	}

	if _, _, err := eng.PlanCleaning(cancelled, "dp", spec, 200); !errors.Is(err, context.Canceled) {
		t.Fatalf("Engine.PlanCleaning: got %v", err)
	}
	plan, _, err := eng.PlanCleaning(context.Background(), "greedy", spec, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.VerifyImprovement(cancelled, cctx, plan, 10000); !errors.Is(err, context.Canceled) {
		t.Fatalf("Engine.VerifyImprovement: got %v", err)
	}
	if _, err := eng.AdaptiveCleaning(cancelled, cctx, "greedy", nil, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Engine.AdaptiveCleaning: got %v", err)
	}
	if _, _, err := eng.MinBudgetForTarget(cancelled, cctx, cctx.Eval.S/2, 10000, "greedy"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Engine.MinBudgetForTarget: got %v", err)
	}

	// A fresh engine with a cancelled context never starts the PSR pass.
	eng2, err := New(db, WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Answers(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Answers on cancelled context: got %v", err)
	}
	// But a memoized engine can still serve cached state... by design the
	// memo hit path does not consult ctx (nothing left to cancel).
	if _, err := eng.Quality(cancelled); err != nil {
		t.Fatalf("memoized Quality should not fail: %v", err)
	}
}

// TestCancellationMidFlight cancels while a large DP plan is running and
// checks the planner comes back with context.Canceled rather than a plan.
func TestCancellationMidFlight(t *testing.T) {
	db := engineSyntheticDB(t, 2000)
	eng, err := New(db, WithK(15))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := DefaultCleaningSpec(db.NumGroups(), 77)
	if err != nil {
		t.Fatal(err)
	}
	cctx, err := eng.CleaningContext(context.Background(), spec, 5000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type res struct {
		plan CleaningPlan
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := LookupPlanner("dp")
		if err != nil {
			ch <- res{nil, err}
			return
		}
		plan, err := p.Plan(ctx, cctx)
		ch <- res{plan, err}
	}()
	cancel()
	r := <-ch
	// The goroutine may have finished before cancel landed; both outcomes
	// are legal, but an error must be the context's.
	if r.err != nil && !errors.Is(r.err, context.Canceled) {
		t.Fatalf("mid-flight cancel: got %v", r.err)
	}
	if r.err != nil && r.plan != nil {
		t.Fatal("cancelled planner must not return a plan")
	}
}
