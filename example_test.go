package topkclean_test

// Godoc examples with verified output. Each Example function doubles as a
// documentation snippet on pkg.go.dev and as a regression test (go test
// compares the printed output against the Output comments).

import (
	"context"
	"fmt"
	"math/rand"

	topkclean "github.com/probdb/topkclean"
)

// buildPaperExample constructs Table I of the paper.
func buildPaperExample() *topkclean.Database {
	db := topkclean.NewDatabase()
	_ = db.AddXTuple("S1",
		topkclean.Tuple{ID: "t0", Attrs: []float64{21}, Prob: 0.6},
		topkclean.Tuple{ID: "t1", Attrs: []float64{32}, Prob: 0.4})
	_ = db.AddXTuple("S2",
		topkclean.Tuple{ID: "t2", Attrs: []float64{30}, Prob: 0.7},
		topkclean.Tuple{ID: "t3", Attrs: []float64{22}, Prob: 0.3})
	_ = db.AddXTuple("S3",
		topkclean.Tuple{ID: "t4", Attrs: []float64{25}, Prob: 0.4},
		topkclean.Tuple{ID: "t5", Attrs: []float64{27}, Prob: 0.6})
	_ = db.AddXTuple("S4",
		topkclean.Tuple{ID: "t6", Attrs: []float64{26}, Prob: 1})
	_ = db.Build(topkclean.ByFirstAttr)
	return db
}

func ExampleNew() {
	db := buildPaperExample()
	// One Engine session computes the rank-probability pass once; answers,
	// quality, and cleaning plans all reuse it.
	eng, err := topkclean.New(db, topkclean.WithK(2), topkclean.WithPTKThreshold(0.4))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	res, err := eng.Answers(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("PT-2:", topkclean.FormatScored(res.PTK))
	fmt.Printf("quality: %.4f\n", res.Quality)
	// Output:
	// PT-2: {t1, t2, t5}
	// quality: -2.5513
}

func ExampleEngine_PlanCleaning() {
	db := buildPaperExample()
	eng, err := topkclean.New(db, topkclean.WithK(2))
	if err != nil {
		panic(err)
	}
	// Every probe costs 1 unit and always succeeds; budget of 2 probes.
	spec := topkclean.UniformCleaningSpec(db.NumGroups(), 1, 1.0)
	plan, cctx, err := eng.PlanCleaning(context.Background(), "dp", spec, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("probes: %d, expected improvement: %.4f\n",
		plan.Ops(), topkclean.ExpectedImprovement(cctx, plan))
	// Output:
	// probes: 2, expected improvement: 1.8522
}

func ExampleLookupPlanner() {
	p, err := topkclean.LookupPlanner("greedy")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name())
	// Output:
	// greedy
}

func ExampleEvaluate() {
	db := buildPaperExample()
	res, err := topkclean.Evaluate(db, 2, 0.4)
	if err != nil {
		panic(err)
	}
	fmt.Println("PT-2:", topkclean.FormatScored(res.PTK))
	fmt.Printf("quality: %.4f\n", res.Quality)
	// Output:
	// PT-2: {t1, t2, t5}
	// quality: -2.5513
}

func ExampleQuality() {
	db := buildPaperExample()
	s, err := topkclean.Quality(db, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", s)
	// Output:
	// -2.55
}

func ExamplePWResultDistribution() {
	db := buildPaperExample()
	dist, err := topkclean.PWResultDistribution(db, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("possible answers:", len(dist))
	fmt.Println("most likely:", dist[0])
	// Output:
	// possible answers: 7
	// most likely: (t1,t2)@0.28
}

func ExampleUTopK() {
	db := buildPaperExample()
	best, err := topkclean.UTopK(db, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(best)
	// Output:
	// (t1,t2)@0.28
}

func ExampleApplyCleaning() {
	db := buildPaperExample()
	// Probing sensor S3 (x-tuple index 2) confirms reading t5 (index 1).
	cleaned, err := topkclean.ApplyCleaning(db, topkclean.CleanChoices{2: 1})
	if err != nil {
		panic(err)
	}
	s, _ := topkclean.Quality(cleaned, 2)
	fmt.Printf("%.2f\n", s)
	// Output:
	// -1.85
}

func ExamplePlanCleaning() {
	db := buildPaperExample()
	// Every probe costs 1 unit and always succeeds; budget of 2 probes.
	spec := topkclean.UniformCleaningSpec(db.NumGroups(), 1, 1.0)
	ctx, err := topkclean.NewCleaningContext(db, 2, spec, 2)
	if err != nil {
		panic(err)
	}
	plan, err := topkclean.PlanCleaning(ctx, topkclean.MethodDP, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("probes: %d, expected improvement: %.4f\n",
		plan.Ops(), topkclean.ExpectedImprovement(ctx, plan))
	// Output:
	// probes: 2, expected improvement: 1.8522
}

func ExampleExecuteCleaning() {
	db := buildPaperExample()
	spec := topkclean.UniformCleaningSpec(db.NumGroups(), 1, 1.0)
	ctx, err := topkclean.NewCleaningContext(db, 2, spec, 100)
	if err != nil {
		panic(err)
	}
	plan, _ := topkclean.PlanCleaning(ctx, topkclean.MethodGreedy, 0)
	out, err := topkclean.ExecuteCleaning(ctx, plan, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("quality after cleaning everything: %.1f\n", out.NewQuality)
	// Output:
	// quality after cleaning everything: 0.0
}

func ExampleMinBudgetForTarget() {
	db := buildPaperExample()
	spec := topkclean.UniformCleaningSpec(db.NumGroups(), 1, 1.0)
	ctx, err := topkclean.NewCleaningContext(db, 2, spec, 0)
	if err != nil {
		panic(err)
	}
	// How many certain probes to halve the ambiguity?
	target := ctx.Eval.S / 2
	budget, _, err := topkclean.MinBudgetForTarget(ctx, target, 1000, topkclean.MethodDP)
	if err != nil {
		panic(err)
	}
	fmt.Println("probes needed:", budget)
	// Output:
	// probes needed: 2
}

func ExampleDatabase_ComputeStats() {
	db := buildPaperExample()
	fmt.Println(db.ComputeStats())
	// Output:
	// x-tuples=4 tuples=7 (avg 1.75/x-tuple, 0 nulls, 1 certain) e in [0.3, 1]
}

func ExampleDatabase_Batch() {
	db := buildPaperExample()
	before := db.Version()
	// A burst of updates commits as one version bump and one epoch: a new
	// sensor comes online and S3's distribution is revised, atomically.
	err := db.Batch(func(b *topkclean.Batch) error {
		if err := b.InsertXTuple("S5",
			topkclean.Tuple{ID: "t7", Attrs: []float64{29}, Prob: 0.5}); err != nil {
			return err
		}
		return b.Reweight(2, []float64{0.2, 0.7})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("versions committed:", db.Version()-before)
	fmt.Println("x-tuples:", db.NumGroups())
	// Output:
	// versions committed: 1
	// x-tuples: 5
}

func ExampleDatabase_Snapshot() {
	db := buildPaperExample()
	eng, err := topkclean.New(db, topkclean.WithK(2), topkclean.WithPTKThreshold(0.4))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	// Pin the current epoch. The snapshot is an immutable view: queries
	// against it never block on writers and never observe later mutations.
	snap := db.Snapshot()

	// Mutate the live database: S3 resolves to its better reading.
	if err := db.Collapse(2, 1); err != nil {
		panic(err)
	}

	// The engine serves the new version; the pinned epoch still holds the
	// old state, byte for byte.
	res, err := eng.Answers(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("live:     v%d, PT-2 %s\n", res.Version, topkclean.FormatScored(res.PTK))
	fmt.Printf("snapshot: v%d, %d x-tuples, frozen=%v\n", snap.Version(), snap.NumGroups(), snap.Frozen())
	// Output:
	// live:     v2, PT-2 {t1, t2, t5}
	// snapshot: v1, 4 x-tuples, frozen=true
}

func ExampleEngine_ApplyCleaning() {
	db := buildPaperExample()
	eng, err := topkclean.New(db, topkclean.WithK(2), topkclean.WithPTKThreshold(0.4))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	// The mutate-while-serving loop: plan a cleaning against the memoized
	// evaluation, execute it onto the live database (one atomic epoch),
	// and read the re-evaluated quality — all in one session. Probes cost
	// 1 unit and always succeed; budget of 2 probes.
	spec := topkclean.UniformCleaningSpec(db.NumGroups(), 1, 1.0)
	plan, cctx, err := eng.PlanCleaning(ctx, "dp", spec, 2)
	if err != nil {
		panic(err)
	}
	out, err := eng.ApplyCleaning(ctx, cctx, plan, rand.New(rand.NewSource(7)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("cleaned %d x-tuples for cost %d\n", len(out.Choices), out.CostUsed)
	fmt.Printf("quality %.4f -> %.4f (improved %.4f)\n",
		out.NewQuality-out.Improvement, out.NewQuality, out.Improvement)
	res, _ := eng.Answers(ctx)
	fmt.Println("new answers at version", res.Version, "PT-2:", topkclean.FormatScored(res.PTK))
	// Output:
	// cleaned 2 x-tuples for cost 2
	// quality -2.5513 -> -0.9710 (improved 1.5804)
	// new answers at version 2 PT-2: {t5, t6, t4}
}
