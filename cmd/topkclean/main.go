// Command topkclean is the command-line interface to the library: generate
// datasets, evaluate probabilistic top-k queries and their PWS-quality,
// plan budgeted cleaning, and simulate the cleaning agent.
//
// Usage:
//
//	topkclean gen      -kind synthetic -xtuples 1000 -o data.csv
//	topkclean quality  -data data.csv -k 15
//	topkclean query    -data data.csv -k 15 -threshold 0.1
//	topkclean clean    -data data.csv -k 15 -budget 100 -method greedy
//	topkclean simulate -data data.csv -k 15 -budget 100 -method dp -seed 3
//
// Datasets are CSV (xtuple,id,prob,attr0,...) or JSON; cleaning specs are
// JSON (see -spec). Without -spec, a spec is generated with the paper's
// defaults (costs uniform in [1,10], sc-probabilities uniform in [0,1]).
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C cancels the engine context, so long-running planners (a big DP
	// table, a large Monte-Carlo verification) abort promptly instead of
	// running to completion after the user gave up.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runCtx = ctx
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:], os.Stdout)
	case "quality":
		err = cmdQuality(os.Args[2:], os.Stdout)
	case "query":
		err = cmdQuery(os.Args[2:], os.Stdout)
	case "clean":
		err = cmdClean(os.Args[2:], os.Stdout)
	case "simulate":
		err = cmdSimulate(os.Args[2:], os.Stdout)
	case "verify":
		err = cmdVerify(os.Args[2:], os.Stdout)
	case "report":
		err = cmdReport(os.Args[2:], os.Stdout)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "topkclean: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkclean %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `topkclean - probabilistic top-k queries, quality, and cleaning

commands:
  gen       generate a synthetic or MOV-like dataset (CSV/JSON)
  quality   compute the PWS-quality of a top-k query
  query     evaluate U-kRanks, PT-k, and Global-topk with quality
  clean     plan budgeted cleaning (dp | greedy | randp | randu);
            -apply executes the plan in place and shows before/after answers
  simulate  plan and then simulate the cleaning agent
  verify    cross-check a plan's expected improvement by simulation
  report    one-page quality + cleaning-outlook report for a dataset
  help      show this message

run 'topkclean <command> -h' for command flags
`)
}
