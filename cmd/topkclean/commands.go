package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/store"
)

// runCtx is the context every command threads into the engine; main swaps
// in a signal-aware context so Ctrl-C aborts long-running planners.
var runCtx = context.Background()

// loadDB reads a dataset by extension (.csv or .json) and ranks it by the
// requested function.
func loadDB(path, rankName string) (*topkclean.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rank, err := rankByName(rankName)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") {
		return topkclean.ReadJSON(f, rank)
	}
	return topkclean.ReadCSV(f, rank)
}

// rankByName resolves the -rank flag through the library's shared
// registry (the same names the daemon's tenant.json persists).
func rankByName(rankName string) (topkclean.RankFunc, error) {
	return topkclean.RankByName(rankName)
}

// saveStore persists a built database as a fresh durable store directory
// (WAL + checkpoint; see PERSISTENCE.md) that topkcleand -store or
// `topkclean query -store` can open later. rankName records the ranking
// function in the daemon's tenant.json, so a daemon recovering the
// directory supplies the right one (e.g. "sum" for mov datasets).
func saveStore(dir string, db *topkclean.Database, rankName string) error {
	backend, err := store.OpenDir(dir)
	if err != nil {
		return err
	}
	sdb, err := store.Create(backend, db)
	if err != nil {
		backend.Close()
		return err
	}
	if err := sdb.Close(); err != nil { // writes the checkpoint and syncs
		return err
	}
	meta, err := json.Marshal(map[string]string{"rank": rankName})
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "tenant.json"), meta, 0o644)
}

// openStore recovers a database from a durable store directory. The rank
// function must be the one the database was built with; the recovered
// rank order is verified against it.
func openStore(dir, rankName string) (*store.DB, error) {
	rank, err := rankByName(rankName)
	if err != nil {
		return nil, err
	}
	backend, err := store.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	sdb, err := store.Open(backend, rank)
	if err != nil {
		backend.Close()
		return nil, err
	}
	return sdb, nil
}

// loadOrGenSpec loads a cleaning spec from specPath, or generates the
// paper's default spec when specPath is empty.
func loadOrGenSpec(specPath string, m int, seed int64) (topkclean.CleaningSpec, error) {
	if specPath == "" {
		return topkclean.DefaultCleaningSpec(m, seed)
	}
	f, err := os.Open(specPath)
	if err != nil {
		return topkclean.CleaningSpec{}, err
	}
	defer f.Close()
	return topkclean.ReadSpecJSON(f, m)
}

func cmdGen(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "synthetic", "dataset kind: synthetic | mov")
	xtuples := fs.Int("xtuples", 1000, "number of x-tuples")
	sigma := fs.Float64("sigma", 100, "Gaussian sigma (synthetic)")
	uniform := fs.Bool("uniform", false, "use a uniform uncertainty pdf (synthetic)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (.csv or .json); default stdout CSV")
	specOut := fs.String("spec-o", "", "also write a default cleaning spec (JSON) here")
	storeOut := fs.String("store", "", "also save the dataset as a durable store directory (query it with 'query -store', or serve it by placing it under a topkcleand -store root; mov datasets need -rank sum on 'query -store')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var db *topkclean.Database
	var err error
	switch *kind {
	case "synthetic":
		cfg := topkclean.DefaultSyntheticConfig()
		cfg.NumXTuples = *xtuples
		cfg.Sigma = *sigma
		cfg.Seed = *seed
		if *uniform {
			cfg.PDF = topkclean.PDFUniform
		}
		db, err = topkclean.GenerateSynthetic(cfg)
	case "mov":
		cfg := topkclean.DefaultMOVConfig()
		cfg.NumXTuples = *xtuples
		cfg.Seed = *seed
		db, err = topkclean.GenerateMOV(cfg)
	case "paper":
		db = topkclean.PaperExampleDatabase()
	default:
		return fmt.Errorf("unknown kind %q (want synthetic|mov|paper)", *kind)
	}
	if err != nil {
		return err
	}
	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if strings.HasSuffix(*out, ".json") {
		err = topkclean.WriteJSON(dst, db)
	} else {
		err = topkclean.WriteCSV(dst, db)
	}
	if err != nil {
		return err
	}
	if *specOut != "" {
		spec, err := topkclean.DefaultCleaningSpec(db.NumGroups(), *seed+1)
		if err != nil {
			return err
		}
		f, err := os.Create(*specOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := topkclean.WriteSpecJSON(f, spec); err != nil {
			return err
		}
	}
	if *storeOut != "" {
		rankName := "first"
		if *kind == "mov" {
			rankName = "sum" // GenerateMOV builds with SumOfAttrs
		}
		if err := saveStore(*storeOut, db, rankName); err != nil {
			return err
		}
		fmt.Fprintf(w, "saved durable store at %s (version %d)\n", *storeOut, db.Version())
	}
	fmt.Fprintf(w, "generated %s\n", db.ComputeStats())
	return nil
}

func cmdQuality(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("quality", flag.ExitOnError)
	data := fs.String("data", "", "dataset file (.csv or .json)")
	k := fs.Int("k", 15, "query size k")
	rank := fs.String("rank", "first", "ranking function: first | sum")
	algo := fs.String("algo", "tp", "quality algorithm: tp | pwr | pw")
	dist := fs.Bool("dist", false, "also print the pw-result distribution (PWR; small k only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	db, err := loadDB(*data, *rank)
	if err != nil {
		return err
	}
	var s float64
	switch *algo {
	case "tp":
		var eng *topkclean.Engine
		if eng, err = topkclean.New(db, topkclean.WithK(*k)); err == nil {
			s, err = eng.Quality(runCtx)
		}
	case "pwr":
		s, err = topkclean.QualityPWR(db, *k)
	case "pw":
		s, err = topkclean.QualityPW(db, *k)
	default:
		return fmt.Errorf("unknown algorithm %q (want tp|pwr|pw)", *algo)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset: %s\n", db.ComputeStats())
	fmt.Fprintf(w, "PWS-quality of top-%d query (%s): %.6f\n", *k, *algo, s)
	if *dist {
		d, err := topkclean.PWResultDistribution(db, *k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\npw-result distribution (%d possible answers):\n", len(d))
		limit := len(d)
		if limit > 25 {
			limit = 25
		}
		for _, r := range d[:limit] {
			fmt.Fprintf(w, "  %v\n", r)
		}
		if len(d) > limit {
			fmt.Fprintf(w, "  ... and %d more\n", len(d)-limit)
		}
	}
	return nil
}

func cmdQuery(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	data := fs.String("data", "", "dataset file (.csv or .json)")
	storeDir := fs.String("store", "", "load the database from a durable store directory instead of -data")
	k := fs.Int("k", 15, "query size k")
	threshold := fs.Float64("threshold", 0.1, "PT-k probability threshold, in [0, 1]")
	rank := fs.String("rank", "first", "ranking function: first | sum")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var db *topkclean.Database
	switch {
	case *data != "" && *storeDir != "":
		return fmt.Errorf("-data and -store are mutually exclusive")
	case *storeDir != "":
		sdb, err := openStore(*storeDir, *rank)
		if err != nil {
			return err
		}
		defer sdb.Close()
		db = sdb.DB()
		fmt.Fprintf(w, "store: %s recovered at version %d\n", *storeDir, db.Version())
	case *data != "":
		var err error
		if db, err = loadDB(*data, *rank); err != nil {
			return err
		}
	default:
		return fmt.Errorf("-data or -store is required")
	}
	eng, err := topkclean.New(db, topkclean.WithK(*k), topkclean.WithPTKThreshold(*threshold))
	if err != nil {
		return err
	}
	res, err := eng.Answers(runCtx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset: %s\n\n", db.ComputeStats())
	fmt.Fprintf(w, "U-kRanks:    %s\n", topkclean.FormatRanked(res.UKRanks))
	fmt.Fprintf(w, "PT-%d (T=%g): %s\n", *k, *threshold, topkclean.FormatScored(res.PTK))
	fmt.Fprintf(w, "Global-topk: %s\n", topkclean.FormatScored(res.GlobalTopK))
	fmt.Fprintf(w, "PWS-quality: %.6f\n", res.Quality)
	return nil
}

func cmdClean(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("clean", flag.ExitOnError)
	data := fs.String("data", "", "dataset file (.csv or .json)")
	k := fs.Int("k", 15, "query size k")
	rank := fs.String("rank", "first", "ranking function: first | sum")
	budget := fs.Int("budget", 100, "cleaning budget C")
	method := fs.String("method", "greedy", "planner: dp | greedy | randp | randu")
	specPath := fs.String("spec", "", "cleaning spec JSON (default: generated)")
	seed := fs.Int64("seed", 1, "random seed (spec generation, random planners, and the cleaning agent)")
	explain := fs.Bool("explain", false, "also list candidate x-tuples ranked by improvement per cost")
	apply := fs.Bool("apply", false, "execute the plan onto the database and show before/after answers")
	threshold := fs.Float64("threshold", 0.1, "PT-k probability threshold for -apply answers")
	out := fs.String("o", "", "with -apply: write the cleaned dataset here (.csv or .json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	db, err := loadDB(*data, *rank)
	if err != nil {
		return err
	}
	spec, err := loadOrGenSpec(*specPath, db.NumGroups(), *seed)
	if err != nil {
		return err
	}
	eng, err := topkclean.New(db, topkclean.WithK(*k), topkclean.WithSeed(*seed),
		topkclean.WithPTKThreshold(*threshold))
	if err != nil {
		return err
	}
	var before *topkclean.Result
	if *apply {
		if before, err = eng.Answers(runCtx); err != nil {
			return err
		}
	}
	plan, cctx, err := eng.PlanCleaning(runCtx, *method, spec, *budget)
	if err != nil {
		return err
	}
	imp := topkclean.ExpectedImprovement(cctx, plan)
	fmt.Fprintf(w, "quality before cleaning: %.6f\n", cctx.Eval.S)
	fmt.Fprintf(w, "plan (%s): %d x-tuples, %d operations, cost %d of %d\n",
		*method, plan.Groups(), plan.Ops(), plan.TotalCost(spec), *budget)
	fmt.Fprintf(w, "expected improvement:    %.6f\n", imp)
	fmt.Fprintf(w, "expected quality after:  %.6f\n", cctx.Eval.S+imp)
	for _, l := range plan.SortedGroups() {
		g, err := db.Group(l)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  clean %-12s x%d  (cost %d each, sc-prob %.2f)\n",
			g.Name, plan[l], spec.Costs[l], spec.SCProbs[l])
	}
	if *explain {
		cands, err := topkclean.CleaningCandidates(cctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\ncandidate x-tuples (by improvement per unit cost):\n")
		limit := len(cands)
		if limit > 15 {
			limit = 15
		}
		for _, c := range cands[:limit] {
			fmt.Fprintf(w, "  %-12s gain=%.4f cost=%d sc-prob=%.2f gamma=%.4f\n",
				c.Name, c.Gain, c.Cost, c.SCProb, c.Gamma)
		}
		if len(cands) > limit {
			fmt.Fprintf(w, "  ... and %d more\n", len(cands)-limit)
		}
	}
	if *apply {
		outcome, err := eng.ApplyCleaning(runCtx, cctx, plan, nil)
		if err != nil {
			return err
		}
		after, err := eng.Answers(runCtx)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\napplied: %d of %d operations used (cost %d of %d; early successes refund), %d x-tuples resolved\n",
			outcome.OpsUsed, outcome.OpsPlanned, outcome.CostUsed, outcome.CostPlanned, len(outcome.Choices))
		fmt.Fprintf(w, "database now at version %d\n\n", db.Version())
		fmt.Fprintf(w, "                before                          after\n")
		fmt.Fprintf(w, "U-kRanks:    %-30s  %s\n",
			topkclean.FormatRanked(before.UKRanks), topkclean.FormatRanked(after.UKRanks))
		fmt.Fprintf(w, "PT-%d (T=%g): %-30s  %s\n",
			*k, *threshold, topkclean.FormatScored(before.PTK), topkclean.FormatScored(after.PTK))
		fmt.Fprintf(w, "Global-topk: %-30s  %s\n",
			topkclean.FormatScored(before.GlobalTopK), topkclean.FormatScored(after.GlobalTopK))
		fmt.Fprintf(w, "PWS-quality: %-30.6f  %.6f (realized improvement %.6f)\n",
			before.Quality, after.Quality, outcome.Improvement)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			if strings.HasSuffix(*out, ".json") {
				err = topkclean.WriteJSON(f, db)
			} else {
				err = topkclean.WriteCSV(f, db)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func cmdVerify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	data := fs.String("data", "", "dataset file (.csv or .json)")
	k := fs.Int("k", 15, "query size k")
	rank := fs.String("rank", "first", "ranking function: first | sum")
	budget := fs.Int("budget", 100, "cleaning budget C")
	method := fs.String("method", "greedy", "planner: dp | greedy | randp | randu")
	specPath := fs.String("spec", "", "cleaning spec JSON (default: generated)")
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int("trials", 2000, "Monte-Carlo trials")
	workers := fs.Int("workers", 0, "simulation workers (0 = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	db, err := loadDB(*data, *rank)
	if err != nil {
		return err
	}
	spec, err := loadOrGenSpec(*specPath, db.NumGroups(), *seed)
	if err != nil {
		return err
	}
	eng, err := topkclean.New(db, topkclean.WithK(*k), topkclean.WithSeed(*seed),
		topkclean.WithParallelism(*workers))
	if err != nil {
		return err
	}
	plan, cctx, err := eng.PlanCleaning(runCtx, *method, spec, *budget)
	if err != nil {
		return err
	}
	analytical, simulated, err := eng.VerifyImprovement(runCtx, cctx, plan, *trials)
	if err != nil {
		return err
	}
	diff := analytical - simulated
	if diff < 0 {
		diff = -diff
	}
	fmt.Fprintf(w, "plan (%s): %d operations on %d x-tuples, cost %d\n",
		*method, plan.Ops(), plan.Groups(), plan.TotalCost(spec))
	fmt.Fprintf(w, "expected improvement (Theorem 2): %.6f\n", analytical)
	fmt.Fprintf(w, "simulated improvement (%d trials): %.6f\n", *trials, simulated)
	fmt.Fprintf(w, "absolute difference: %.6f\n", diff)
	return nil
}

func cmdSimulate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	data := fs.String("data", "", "dataset file (.csv or .json)")
	k := fs.Int("k", 15, "query size k")
	rank := fs.String("rank", "first", "ranking function: first | sum")
	budget := fs.Int("budget", 100, "cleaning budget C")
	method := fs.String("method", "greedy", "planner: dp | greedy | randp | randu")
	specPath := fs.String("spec", "", "cleaning spec JSON (default: generated)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "write the cleaned dataset here (.csv or .json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	db, err := loadDB(*data, *rank)
	if err != nil {
		return err
	}
	spec, err := loadOrGenSpec(*specPath, db.NumGroups(), *seed)
	if err != nil {
		return err
	}
	eng, err := topkclean.New(db, topkclean.WithK(*k), topkclean.WithSeed(*seed))
	if err != nil {
		return err
	}
	plan, cctx, err := eng.PlanCleaning(runCtx, *method, spec, *budget)
	if err != nil {
		return err
	}
	outcome, err := topkclean.ExecuteCleaning(cctx, plan, rand.New(rand.NewSource(*seed+99)))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "quality before:  %.6f\n", cctx.Eval.S)
	fmt.Fprintf(w, "expected after:  %.6f\n", cctx.Eval.S+topkclean.ExpectedImprovement(cctx, plan))
	fmt.Fprintf(w, "realized after:  %.6f (improvement %.6f)\n", outcome.NewQuality, outcome.Improvement)
	fmt.Fprintf(w, "operations: %d of %d planned; cost %d of %d planned (early successes refund)\n",
		outcome.OpsUsed, outcome.OpsPlanned, outcome.CostUsed, outcome.CostPlanned)
	fmt.Fprintf(w, "x-tuples cleaned successfully: %d of %d selected\n", len(outcome.Choices), plan.Groups())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(*out, ".json") {
			return topkclean.WriteJSON(f, outcome.DB)
		}
		return topkclean.WriteCSV(f, outcome.DB)
	}
	return nil
}
