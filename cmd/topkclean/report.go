package main

import (
	"flag"
	"fmt"
	"io"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/exp"
)

// cmdReport produces a single consolidated quality report for a dataset:
// statistics, query answers, the quality score and how it decomposes over
// x-tuples, the best cleaning candidates, and the budget/quality trade-off
// curve. It is the "give me the whole picture" command an operator runs
// before deciding on a cleaning campaign.
func cmdReport(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	data := fs.String("data", "", "dataset file (.csv or .json)")
	k := fs.Int("k", 15, "query size k")
	threshold := fs.Float64("threshold", 0.1, "PT-k probability threshold, in [0, 1]")
	rank := fs.String("rank", "first", "ranking function: first | sum")
	specPath := fs.String("spec", "", "cleaning spec JSON (default: generated)")
	seed := fs.Int64("seed", 1, "random seed for spec generation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	db, err := loadDB(*data, *rank)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Quality report: %s\n\n", *data)
	fmt.Fprintf(w, "dataset: %s\n\n", db.ComputeStats())

	// One engine session serves the whole report: the query answers, the
	// quality-vs-k sweep, and the cleaning outlook share its memoized
	// rank-probability passes.
	eng, err := topkclean.New(db, topkclean.WithK(*k), topkclean.WithPTKThreshold(*threshold))
	if err != nil {
		return err
	}
	res, err := eng.Answers(runCtx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "top-%d query answers:\n", *k)
	fmt.Fprintf(w, "  U-kRanks:    %s\n", topkclean.FormatRanked(res.UKRanks))
	fmt.Fprintf(w, "  PT-k (T=%g): %s\n", *threshold, topkclean.FormatScored(res.PTK))
	fmt.Fprintf(w, "  Global-topk: %s\n\n", topkclean.FormatScored(res.GlobalTopK))
	fmt.Fprintf(w, "PWS-quality: %.6f (0 = certain; more negative = more ambiguous)\n\n", res.Quality)

	// Quality across k: how ambiguity grows with answer size.
	qtab := exp.NewTable("quality vs k", "k", "S")
	for _, kk := range []int{1, 5, 10, *k, 2 * *k} {
		if kk > db.NumGroups() || kk < 1 {
			continue
		}
		s, err := eng.QualityAt(runCtx, kk)
		if err != nil {
			return err
		}
		qtab.AddRow(kk, s)
	}
	if err := qtab.Render(w); err != nil {
		return err
	}

	// Cleaning outlook.
	spec, err := loadOrGenSpec(*specPath, db.NumGroups(), *seed)
	if err != nil {
		return err
	}
	ctx, err := eng.CleaningContext(runCtx, spec, 0)
	if err != nil {
		return err
	}
	cands, err := topkclean.CleaningCandidates(mustBudget(ctx, 1_000_000))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cleanable ambiguity: %d x-tuples carry the whole quality deficit\n\n", len(cands))
	ctab := exp.NewTable("best cleaning candidates (improvement per unit cost)",
		"x-tuple", "removable deficit", "cost", "sc-prob", "gamma")
	limit := len(cands)
	if limit > 10 {
		limit = 10
	}
	for _, c := range cands[:limit] {
		ctab.AddRow(c.Name, c.Gain, c.Cost, c.SCProb, c.Gamma)
	}
	if err := ctab.Render(w); err != nil {
		return err
	}

	btab := exp.NewTable("budget vs expected quality (greedy plans)",
		"budget", "expected S after cleaning", "deficit removed")
	for _, c := range exp.LogSpacedInts(1, 10000, 9) {
		sub := mustBudget(ctx, c)
		plan, err := topkclean.PlanCleaning(sub, topkclean.MethodGreedy, 0)
		if err != nil {
			return err
		}
		imp := topkclean.ExpectedImprovement(sub, plan)
		frac := 0.0
		if res.Quality < 0 {
			frac = imp / -res.Quality
		}
		btab.AddRow(c, res.Quality+imp, fmt.Sprintf("%.1f%%", frac*100))
	}
	return btab.Render(w)
}

// mustBudget returns a copy of ctx with the given budget.
func mustBudget(ctx *topkclean.CleaningContext, budget int) *topkclean.CleaningContext {
	sub := *ctx
	sub.Budget = budget
	return &sub
}
