package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// genTestData writes a small synthetic dataset + spec into dir and returns
// their paths.
func genTestData(t *testing.T, dir string) (data, spec string) {
	t.Helper()
	data = filepath.Join(dir, "data.csv")
	spec = filepath.Join(dir, "spec.json")
	var out strings.Builder
	err := cmdGen([]string{"-kind", "synthetic", "-xtuples", "100", "-seed", "4",
		"-o", data, "-spec-o", spec}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "generated") {
		t.Fatalf("gen output: %s", out.String())
	}
	return data, spec
}

func TestCmdGenAndQuery(t *testing.T) {
	dir := t.TempDir()
	data, _ := genTestData(t, dir)
	var out strings.Builder
	if err := cmdQuery([]string{"-data", data, "-k", "5", "-threshold", "0.2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"U-kRanks:", "PT-5", "Global-topk:", "PWS-quality: -"} {
		if !strings.Contains(s, want) {
			t.Errorf("query output missing %q:\n%s", want, s)
		}
	}
}

func TestCmdGenJSONAndMOV(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "mov.json")
	var out strings.Builder
	if err := cmdGen([]string{"-kind", "mov", "-xtuples", "60", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	var q strings.Builder
	if err := cmdQuery([]string{"-data", data, "-k", "3", "-rank", "sum"}, &q); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "PWS-quality:") {
		t.Fatalf("query on JSON MOV data failed:\n%s", q.String())
	}
}

func TestCmdQualityAllAlgorithms(t *testing.T) {
	dir := t.TempDir()
	// Tiny dataset so PW is feasible (10 alternatives each -> cap x-tuples).
	data := filepath.Join(dir, "tiny.csv")
	var out strings.Builder
	if err := cmdGen([]string{"-kind", "synthetic", "-xtuples", "5", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	results := map[string]string{}
	for _, algo := range []string{"tp", "pwr", "pw"} {
		var buf strings.Builder
		if err := cmdQuality([]string{"-data", data, "-k", "3", "-algo", algo}, &buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		results[algo] = lines[len(lines)-1][strings.LastIndex(lines[len(lines)-1], " ")+1:]
	}
	if results["tp"] != results["pwr"] || results["tp"] != results["pw"] {
		t.Fatalf("algorithms disagree: %v", results)
	}
}

func TestCmdCleanAndSimulate(t *testing.T) {
	dir := t.TempDir()
	data, spec := genTestData(t, dir)
	var clean strings.Builder
	err := cmdClean([]string{"-data", data, "-k", "5", "-budget", "40",
		"-method", "dp", "-spec", spec}, &clean)
	if err != nil {
		t.Fatal(err)
	}
	s := clean.String()
	for _, want := range []string{"quality before cleaning:", "expected improvement:", "plan (dp):"} {
		if !strings.Contains(s, want) {
			t.Errorf("clean output missing %q:\n%s", want, s)
		}
	}

	cleanedPath := filepath.Join(dir, "cleaned.csv")
	var sim strings.Builder
	err = cmdSimulate([]string{"-data", data, "-k", "5", "-budget", "40",
		"-method", "greedy", "-spec", spec, "-seed", "9", "-o", cleanedPath}, &sim)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sim.String(), "realized after:") {
		t.Fatalf("simulate output:\n%s", sim.String())
	}
	if _, err := os.Stat(cleanedPath); err != nil {
		t.Fatalf("cleaned dataset not written: %v", err)
	}
	// The cleaned dataset must load and evaluate.
	var q strings.Builder
	if err := cmdQuality([]string{"-data", cleanedPath, "-k", "5"}, &q); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCleanApply(t *testing.T) {
	dir := t.TempDir()
	data, spec := genTestData(t, dir)
	cleanedPath := filepath.Join(dir, "applied.csv")
	var out strings.Builder
	err := cmdClean([]string{"-data", data, "-k", "5", "-budget", "40",
		"-method", "greedy", "-spec", spec, "-seed", "3", "-apply", "-o", cleanedPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"applied:", "database now at version", "before", "after",
		"U-kRanks:", "Global-topk:", "realized improvement"} {
		if !strings.Contains(s, want) {
			t.Errorf("apply output missing %q:\n%s", want, s)
		}
	}
	// The applied dataset must load and evaluate.
	var q strings.Builder
	if err := cmdQuality([]string{"-data", cleanedPath, "-k", "5"}, &q); err != nil {
		t.Fatal(err)
	}
}

func TestCmdGenPaperKindAndQualityDist(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "paper.csv")
	var out strings.Builder
	if err := cmdGen([]string{"-kind", "paper", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	var q strings.Builder
	if err := cmdQuality([]string{"-data", data, "-k", "2", "-dist"}, &q); err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "-2.551326") {
		t.Fatalf("paper dataset quality wrong:\n%s", s)
	}
	if !strings.Contains(s, "7 possible answers") || !strings.Contains(s, "(t1,t2)@0.28") {
		t.Fatalf("distribution output wrong:\n%s", s)
	}
}

func TestCmdCleanExplain(t *testing.T) {
	dir := t.TempDir()
	data, spec := genTestData(t, dir)
	var out strings.Builder
	err := cmdClean([]string{"-data", data, "-k", "5", "-budget", "40",
		"-method", "greedy", "-spec", spec, "-explain"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "candidate x-tuples") {
		t.Fatalf("explain output missing candidates:\n%s", out.String())
	}
}

func TestCmdVerify(t *testing.T) {
	dir := t.TempDir()
	data, spec := genTestData(t, dir)
	var out strings.Builder
	err := cmdVerify([]string{"-data", data, "-k", "5", "-budget", "30",
		"-method", "dp", "-spec", spec, "-trials", "400"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"expected improvement (Theorem 2):", "simulated improvement", "absolute difference:"} {
		if !strings.Contains(s, want) {
			t.Errorf("verify output missing %q:\n%s", want, s)
		}
	}
	if err := cmdVerify([]string{}, &out); err == nil {
		t.Error("verify without -data should fail")
	}
}

func TestCmdErrors(t *testing.T) {
	var out strings.Builder
	if err := cmdQuality([]string{}, &out); err == nil {
		t.Error("quality without -data should fail")
	}
	if err := cmdQuery([]string{"-data", "/does/not/exist.csv"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	if err := cmdGen([]string{"-kind", "bogus"}, &out); err == nil {
		t.Error("unknown kind should fail")
	}
	dir := t.TempDir()
	data, _ := genTestData(t, dir)
	if err := cmdQuality([]string{"-data", data, "-algo", "bogus"}, &out); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if err := cmdQuery([]string{"-data", data, "-rank", "bogus"}, &out); err == nil {
		t.Error("unknown rank function should fail")
	}
	if err := cmdClean([]string{"-data", data, "-method", "bogus", "-k", "5"}, &out); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestCmdReport(t *testing.T) {
	dir := t.TempDir()
	data, spec := genTestData(t, dir)
	var out strings.Builder
	if err := cmdReport([]string{"-data", data, "-k", "5", "-spec", spec}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"# Quality report:",
		"PWS-quality: -",
		"quality vs k",
		"best cleaning candidates",
		"budget vs expected quality",
		"deficit removed",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if err := cmdReport([]string{}, &out); err == nil {
		t.Error("report without -data should fail")
	}
}

func TestLoadOrGenSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	_, spec := genTestData(t, dir)
	got, err := loadOrGenSpec(spec, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Costs) != 100 {
		t.Fatalf("spec length %d", len(got.Costs))
	}
	if _, err := loadOrGenSpec(spec, 7, 1); err == nil {
		t.Error("spec with mismatched m should fail validation")
	}
	if _, err := loadOrGenSpec("/does/not/exist.json", 5, 1); err == nil {
		t.Error("missing spec file should fail")
	}
}

// TestCmdGenStoreAndQueryStore: `gen -store` saves a durable store and
// `query -store` recovers it with the same answers the CSV path gives.
func TestCmdGenStoreAndQueryStore(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	storeDir := filepath.Join(dir, "store")
	var gen strings.Builder
	err := cmdGen([]string{"-kind", "synthetic", "-xtuples", "80", "-seed", "4",
		"-o", data, "-store", storeDir}, &gen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gen.String(), "saved durable store") {
		t.Fatalf("gen output: %s", gen.String())
	}
	var fromStore, fromCSV strings.Builder
	if err := cmdQuery([]string{"-store", storeDir, "-k", "5"}, &fromStore); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-data", data, "-k", "5"}, &fromCSV); err != nil {
		t.Fatal(err)
	}
	got := fromStore.String()
	if !strings.Contains(got, "recovered at version 1") {
		t.Fatalf("store query did not report recovery:\n%s", got)
	}
	// Identical answers modulo the recovery banner.
	if trimmed := got[strings.Index(got, "dataset:"):]; trimmed != fromCSV.String() {
		t.Fatalf("store answers diverge from CSV answers:\ngot  %s\nwant %s", trimmed, fromCSV.String())
	}
	// -data and -store together, or neither, are usage errors.
	if err := cmdQuery([]string{"-data", data, "-store", storeDir}, &fromCSV); err == nil {
		t.Fatal("mutually exclusive flags accepted")
	}
	if err := cmdQuery([]string{}, &fromCSV); err == nil {
		t.Fatal("missing data source accepted")
	}
}
