package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// followerServer starts a follower daemon over a leader's store root —
// the in-process version of `topkcleand -follower <root>`.
func followerServer(t testing.TB, storeRoot string) (*httptest.Server, *server) {
	t.Helper()
	s := newServer(serverConfig{
		k: 5, threshold: 0.1, seed: 42,
		storeRoot: storeRoot, follower: true,
		replicaPoll: 2 * time.Millisecond,
	})
	if err := s.recoverFollowers(t.Logf); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.closeStores(t.Logf)
	})
	return ts, s
}

// waitConverged polls the follower until its replicated version reaches
// want on the named database.
func waitConverged(t testing.TB, fsrv *server, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ft, err := fsrv.tenant(name)
		if err != nil {
			t.Fatal(err)
		}
		if ft.rep.Version() >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at v%d, want v%d (err=%v)", ft.rep.Version(), want, ft.rep.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sameBytes asserts two endpoints answer byte-identically.
func sameBytes(t testing.TB, what, leaderURL, followerURL string) {
	t.Helper()
	lb, fb := getBytes(t, leaderURL), getBytes(t, followerURL)
	if !bytes.Equal(lb, fb) {
		t.Fatalf("%s: leader and follower differ\nleader:   %s\nfollower: %s", what, lb, fb)
	}
}

// TestFollowerServing is the leader/follower end-to-end test: a follower
// tailing the leader's store serves byte-identical answers, refuses
// writes with the role error body, reports its role and lag in /stats,
// and converges after further leader commits.
func TestFollowerServing(t *testing.T) {
	root := t.TempDir()
	lts, lsrv := testServerStore(t, 50, 5, root)

	// Commit history on the leader before the follower exists: mutations
	// and an applied cleaning (the mixed script of the acceptance bar).
	var mresp mutateResponse
	if code := postJSON(t, lts.URL+"/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert", Name: "fx1", Tuples: []tupleJSON{{ID: "f1", Attrs: []float64{55}, Prob: 0.6}, {ID: "f2", Attrs: []float64{44}, Prob: 0.3}}},
		{Op: "insert_absent", Name: "fx2"},
	}}, &mresp); code != http.StatusOK {
		t.Fatalf("leader mutate: %d", code)
	}
	var aresp applyResponse
	if code := postJSON(t, lts.URL+"/apply", applyRequest{Planner: "greedy", Budget: 3}, &aresp); code != http.StatusOK {
		t.Fatalf("leader apply: %d", code)
	}

	fts, fsrv := followerServer(t, root)

	// healthz: role-tagged on both sides; the follower synced to the tail
	// during recovery, so it is ready immediately.
	var lhealth, fhealth map[string]any
	getJSON(t, lts.URL+"/healthz", &lhealth)
	if lhealth["role"] != "leader" {
		t.Fatalf("leader healthz: %v", lhealth)
	}
	getJSON(t, fts.URL+"/healthz", &fhealth)
	if fhealth["role"] != "follower" || fhealth["ready"] != true || fhealth["status"] != "ok" {
		t.Fatalf("follower healthz: %v", fhealth)
	}

	lt, err := lsrv.tenant(defaultDB)
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, fsrv, defaultDB, lt.eng.DB().Version())

	// The acceptance bar: byte-identical answers at the replicated version.
	sameBytes(t, "topk", lts.URL+"/topk", fts.URL+"/topk")
	sameBytes(t, "topk?threshold=0.4", lts.URL+"/topk?threshold=0.4", fts.URL+"/topk?threshold=0.4")
	sameBytes(t, "quality", lts.URL+"/quality", fts.URL+"/quality")
	sameBytes(t, "quality?k=3", lts.URL+"/quality?k=3", fts.URL+"/quality?k=3")

	// Write routes answer 403 with the role error body.
	for _, probe := range []struct {
		method, path string
		body         any
	}{
		{"POST", "/mutate", mutateRequest{Ops: []mutateOp{{Op: "insert_absent", Name: "nope"}}}},
		{"POST", "/apply", applyRequest{Planner: "greedy", Budget: 1}},
		{"POST", "/dbs/" + defaultDB + "/mutate", mutateRequest{Ops: []mutateOp{{Op: "insert_absent", Name: "nope"}}}},
		{"POST", "/dbs", createRequest{Name: "newdb"}},
	} {
		var errBody map[string]string
		code := postJSON(t, fts.URL+probe.path, probe.body, &errBody)
		if code != http.StatusForbidden {
			t.Fatalf("%s %s on follower: %d, want 403", probe.method, probe.path, code)
		}
		if errBody["role"] != "follower" || errBody["required_role"] != "leader" || errBody["error"] == "" {
			t.Fatalf("%s %s role error body: %v", probe.method, probe.path, errBody)
		}
	}
	req, err := http.NewRequest(http.MethodDelete, fts.URL+"/dbs/somedb", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var delBody map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&delBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || delBody["role"] != "follower" {
		t.Fatalf("DELETE /dbs on follower: %d %v", resp.StatusCode, delBody)
	}

	// The follower's view must be unchanged by the refused writes.
	sameBytes(t, "topk after refused writes", lts.URL+"/topk", fts.URL+"/topk")

	// /stats: role and replication lag (0 once converged).
	var lstats, fstats statsResponse
	getJSON(t, lts.URL+"/stats", &lstats)
	getJSON(t, fts.URL+"/stats", &fstats)
	if lstats.Role != "leader" || lstats.Replication != nil {
		t.Fatalf("leader stats: role=%q replication=%+v", lstats.Role, lstats.Replication)
	}
	if fstats.Role != "follower" || fstats.Replication == nil {
		t.Fatalf("follower stats: role=%q replication=%+v", fstats.Role, fstats.Replication)
	}
	if !fstats.Replication.Ready || fstats.Replication.AppliedVersion != lstats.Version {
		t.Fatalf("follower replication block: %+v (leader at v%d)", fstats.Replication, lstats.Version)
	}
	if fstats.Version != lstats.Version {
		t.Fatalf("follower serves v%d, leader v%d", fstats.Version, lstats.Version)
	}

	// Mutate the leader again; the follower converges and lag returns to 0.
	if code := postJSON(t, lts.URL+"/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert", Name: "fx3", Tuples: []tupleJSON{{ID: "f3", Attrs: []float64{77}, Prob: 0.9}}},
	}}, &mresp); code != http.StatusOK {
		t.Fatalf("leader mutate 2: %d", code)
	}
	waitConverged(t, fsrv, defaultDB, mresp.Version)
	sameBytes(t, "topk after convergence", lts.URL+"/topk", fts.URL+"/topk")
	sameBytes(t, "quality after convergence", lts.URL+"/quality", fts.URL+"/quality")
	getJSON(t, fts.URL+"/stats", &fstats)
	if fstats.Replication.BytesBehind != 0 {
		t.Fatalf("converged follower reports lag: %+v", fstats.Replication)
	}
}

// TestFollowerMultiTenant checks the follower picks up every database
// under the root, including ones created after the leader started, and
// resyncs across a leader checkpoint.
func TestFollowerMultiTenant(t *testing.T) {
	root := t.TempDir()
	lts, lsrv := testServerStore(t, 30, 5, root)

	var created dbInfoJSON
	if code := postJSON(t, lts.URL+"/dbs", createRequest{Name: "second", Synthetic: 25}, &created); code != http.StatusCreated {
		t.Fatalf("create second db: %d", code)
	}
	if code := postJSON(t, lts.URL+"/dbs/second/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert_absent", Name: "sx"},
	}}, new(mutateResponse)); code != http.StatusOK {
		t.Fatal("mutate second db")
	}

	fts, fsrv := followerServer(t, root)
	var dbs struct {
		DBs []dbInfoJSON `json:"dbs"`
	}
	getJSON(t, fts.URL+"/dbs", &dbs)
	if len(dbs.DBs) != 2 {
		t.Fatalf("follower sees %d databases, want 2", len(dbs.DBs))
	}
	sameBytes(t, "second topk", lts.URL+"/dbs/second/topk", fts.URL+"/dbs/second/topk")

	// A leader checkpoint rotates the journal; the follower must resync
	// (generation bump) and keep answering identically.
	lt, err := lsrv.tenant("second")
	if err != nil {
		t.Fatal(err)
	}
	if err := lt.sdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, lts.URL+"/dbs/second/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert", Name: "sy", Tuples: []tupleJSON{{ID: "s1", Attrs: []float64{9}, Prob: 0.4}}},
	}}, new(mutateResponse)); code != http.StatusOK {
		t.Fatal("mutate second db after checkpoint")
	}
	waitConverged(t, fsrv, "second", lt.sdb.Version())
	sameBytes(t, "second topk after resync", lts.URL+"/dbs/second/topk", fts.URL+"/dbs/second/topk")
	sameBytes(t, "second stats version", lts.URL+"/dbs/second/quality", fts.URL+"/dbs/second/quality")

	// Deleting a database with a follower attached is refused on the
	// leader (the journal is being tailed).
	req, err := http.NewRequest(http.MethodDelete, lts.URL+"/dbs/second", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("leader deleted a database a follower is tailing")
	}
}
