package main

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/gen"
	"github.com/probdb/topkclean/internal/shard"
)

// startWriter streams batched mutations at the live database — one batch
// commit roughly every 2ms (~500 epochs/s, far above any realistic update
// stream) until the returned stop function is called: each batch reweights
// a few x-tuples (random ranks, so watermarks land high as well as low)
// and periodically inserts a fresh x-tuple — the serving workload the
// snapshot layer exists for.
func startWriter(db *topkclean.Database) (stop func() (commits int)) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	commits := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			err := db.Batch(func(b *topkclean.Batch) error {
				for j := 0; j < 4; j++ {
					g := rng.Intn(db.NumGroups())
					real := db.Groups()[g].RealTuples()
					if len(real) == 0 {
						continue
					}
					probs := make([]float64, len(real))
					for p := range probs {
						probs[p] = (0.2 + 0.6*rng.Float64()) / float64(len(probs))
					}
					if err := b.Reweight(g, probs); err != nil {
						return err
					}
				}
				if i%16 == 0 {
					return b.InsertXTuple(fmt.Sprintf("w%d", i),
						topkclean.Tuple{ID: fmt.Sprintf("w%d.a", i), Attrs: []float64{rng.Float64() * 100}, Prob: 0.5})
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			commits++
		}
	}()
	return func() int {
		close(done)
		wg.Wait()
		return commits
	}
}

// benchServe measures /topk throughput with parallel HTTP clients,
// optionally while a background writer streams batched mutations.
func benchServe(b *testing.B, mutating bool) {
	db, err := gen.SyntheticSized(1500, 7)
	if err != nil {
		b.Fatal(err)
	}
	srv := newServer(serverConfig{k: 15, threshold: 0.1, seed: 42, synthetic: 100})
	def, err := srv.addTenant(defaultDB, db, tenantConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/topk"

	// Warm the engine and the HTTP path.
	if resp, err := http.Get(url); err != nil {
		b.Fatal(err)
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var commits int
	if mutating {
		stop := startWriter(db)
		defer func() {
			commits = stop()
			b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/s")
		}()
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	b.ReportMetric(float64(def.coal.coalesced.Load()), "coalesced")
}

// BenchmarkServeUnderMutation records serving throughput for the acceptance
// comparison: reader qps with a background writer streaming batched
// mutations (mutating) must stay within 2x of the mutation-free baseline
// (idle). CI records both series in BENCH_PR4.json.
func BenchmarkServeUnderMutation(b *testing.B) {
	b.Run("idle", func(b *testing.B) { benchServe(b, false) })
	b.Run("mutating", func(b *testing.B) { benchServe(b, true) })
}

// startShardWriter streams insert commits at a sharded cluster — the
// router/rebalance path under load — until stopped. Reweights need group
// handles the cluster does not expose, so the sharded writer works in
// fresh x-tuples at random scores (every shard's range gets hit).
func startShardWriter(c *shard.Cluster) (stop func() (commits int)) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	commits := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			err := c.Batch(func(b *shard.Batch) error {
				return b.InsertXTuple(fmt.Sprintf("w%d", i), topkclean.Tuple{
					ID: fmt.Sprintf("w%d.a", i), Attrs: []float64{rng.Float64() * 100}, Prob: 0.5})
			})
			if err != nil {
				panic(err)
			}
			commits++
		}
	}()
	return func() int {
		close(done)
		wg.Wait()
		return commits
	}
}

// benchServeSharded is benchServe over a range-sharded default database:
// /topk throughput through the merge coordinator, optionally with a
// background writer streaming commits through the router.
func benchServeSharded(b *testing.B, shards int, mutating bool) {
	db, err := gen.SyntheticSized(1500, 7)
	if err != nil {
		b.Fatal(err)
	}
	srv := newServer(serverConfig{k: 15, threshold: 0.1, seed: 42, synthetic: 100, shards: shards})
	def, err := srv.addTenant(defaultDB, db, tenantConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/topk"

	if resp, err := http.Get(url); err != nil {
		b.Fatal(err)
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var commits int
	if mutating {
		stop := startShardWriter(def.clu)
		defer func() {
			commits = stop()
			b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/s")
		}()
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	b.ReportMetric(float64(def.coal.coalesced.Load()), "coalesced")
}

// BenchmarkShardedServeUnderMutation is the sharded counterpart of
// BenchmarkServeUnderMutation: reader qps over a 4-shard coordinator with
// and without a concurrent commit stream. CI records both series in
// BENCH_PR10.json next to the single-cluster mutate/requery numbers.
func BenchmarkShardedServeUnderMutation(b *testing.B) {
	b.Run("shards=4/idle", func(b *testing.B) { benchServeSharded(b, 4, false) })
	b.Run("shards=4/mutating", func(b *testing.B) { benchServeSharded(b, 4, true) })
}
