// Command topkcleand is the HTTP query daemon: it serves probabilistic
// top-k queries, quality scores, and budgeted-cleaning planning/execution
// over one uncertain database, answering queries from lock-free snapshot
// epochs while mutations stream in concurrently.
//
// Usage:
//
//	topkcleand -data data.csv -k 15 -threshold 0.1 -addr :8337
//	topkcleand -synthetic 1000 -k 15              # no dataset needed
//
// Endpoints (see SERVING.md for the full API reference):
//
//	GET  /topk      query answers (U-kRanks, PT-k, Global-topk) + quality
//	GET  /quality   PWS-quality, optionally at an explicit k
//	POST /plan      plan budgeted cleaning (dp | greedy | randp | randu)
//	POST /apply     plan (or take a plan) and execute it on the live database
//	POST /mutate    apply a batch of mutations as one commit
//	GET  /stats     version, sizes, coalescing counters
//	GET  /healthz   liveness
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get up to -drain to finish while new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/dataio"
	"github.com/probdb/topkclean/internal/gen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "topkcleand: %v\n", err)
		os.Exit(1)
	}
}

// run wires flags, data, engine, and the HTTP server; it returns when ctx
// is cancelled (after a graceful drain) or the listener fails.
func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("topkcleand", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr      = fs.String("addr", ":8337", "listen address")
		data      = fs.String("data", "", "dataset file (.csv or .json); empty generates a synthetic workload")
		synthetic = fs.Int("synthetic", 1000, "x-tuples in the generated synthetic workload (when -data is empty)")
		k         = fs.Int("k", 15, "query size k")
		threshold = fs.Float64("threshold", 0.1, "PT-k probability threshold")
		seed      = fs.Int64("seed", 42, "random seed (planners, simulated cleaning agent)")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "topkcleand: ", log.LstdFlags)

	db, source, err := loadDatabase(*data, *synthetic, *seed)
	if err != nil {
		return err
	}
	eng, err := topkclean.New(db,
		topkclean.WithK(*k),
		topkclean.WithPTKThreshold(*threshold),
		topkclean.WithSeed(*seed))
	if err != nil {
		return err
	}
	// Warm the memoized pass so the first request is not the slow one.
	if _, err := eng.Answers(ctx); err != nil {
		return err
	}
	logger.Printf("serving %s (%d x-tuples, %d tuples) at %s, k=%d threshold=%g",
		source, db.NumGroups(), db.NumTuples(), *addr, *k, *threshold)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(eng, *seed),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down (drain %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Printf("bye")
	return nil
}

// loadDatabase reads -data (CSV or JSON by extension) or generates the
// synthetic workload of the paper's evaluation section.
func loadDatabase(path string, synthetic int, seed int64) (*topkclean.Database, string, error) {
	if path == "" {
		db, err := gen.SyntheticSized(synthetic, seed)
		if err != nil {
			return nil, "", err
		}
		return db, fmt.Sprintf("synthetic(%d)", synthetic), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var db *topkclean.Database
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		db, err = dataio.ReadJSON(f, topkclean.ByFirstAttr)
	default:
		db, err = dataio.ReadCSV(f, topkclean.ByFirstAttr)
	}
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return db, path, nil
}
