// Command topkcleand is the HTTP query daemon: it serves probabilistic
// top-k queries, quality scores, and budgeted-cleaning planning/execution
// over a registry of named uncertain databases, answering queries from
// lock-free snapshot epochs while mutations stream in concurrently. With
// -store, every database is durable: commits are journaled to a
// write-ahead log, checkpointed periodically, and recovered bit-identically
// on restart (see PERSISTENCE.md).
//
// Usage:
//
//	topkcleand -data data.csv -k 15 -threshold 0.1 -addr :8337
//	topkcleand -synthetic 1000 -k 15              # no dataset needed
//	topkcleand -synthetic 1000 -store ./dbs       # durable, multi-tenant
//
// Endpoints (see SERVING.md for the full API reference):
//
//	GET    /dbs                    list databases
//	POST   /dbs                    create a database (inline data or synthetic)
//	DELETE /dbs/{name}             delete a database (and its journal)
//	GET    /dbs/{name}/topk        query answers (U-kRanks, PT-k, Global-topk) + quality
//	GET    /dbs/{name}/quality     PWS-quality, optionally at an explicit k
//	POST   /dbs/{name}/plan        plan budgeted cleaning (dp | greedy | randp | randu)
//	POST   /dbs/{name}/apply       plan (or take a plan) and execute it on the live database
//	POST   /dbs/{name}/mutate      apply a batch of mutations as one commit
//	GET    /dbs/{name}/stats       version, sizes, durability, coalescing counters
//	GET    /healthz                liveness
//
// The legacy single-database routes (/topk, /quality, /plan, /apply,
// /mutate, /stats) alias to the database named "default", which the
// daemon creates from -data/-synthetic on first start (or recovers from
// the store on later ones).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get up to -drain to finish while new connections are refused, then
// every durable database is flushed (final checkpoint + fsync).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/dataio"
	"github.com/probdb/topkclean/internal/gen"
	"github.com/probdb/topkclean/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "topkcleand: %v\n", err)
		os.Exit(1)
	}
}

// run wires flags, data, the tenant registry, and the HTTP server; it
// returns when ctx is cancelled (after a graceful drain and a store
// flush) or the listener fails.
func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("topkcleand", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr      = fs.String("addr", ":8337", "listen address")
		data      = fs.String("data", "", "dataset file for the default database (.csv or .json); empty generates a synthetic workload")
		synthetic = fs.Int("synthetic", 1000, "x-tuples in generated synthetic workloads (default database and /dbs creations)")
		k         = fs.Int("k", 15, "default query size k")
		threshold = fs.Float64("threshold", 0.1, "default PT-k probability threshold")
		seed      = fs.Int64("seed", 42, "random seed (planners, simulated cleaning agent)")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		storeDir  = fs.String("store", "", "persistence root: one journaled directory per database; empty serves from memory only")
		follower  = fs.String("follower", "", "follow a leader's -store root as a read-only replica (mutually exclusive with -store)")
		backend   = fs.String("store-backend", "file", "registered store driver for -store/-follower ("+strings.Join(store.Drivers(), " | ")+")")
		polly     = fs.Duration("replica-poll", 25*time.Millisecond, "journal poll interval in -follower mode")
		fsync     = fs.Bool("fsync", true, "fsync the journal after every commit (with -store)")
		ckptEvery = fs.Int("checkpoint-every", 256, "journal records between automatic checkpoints (with -store)")
		shards    = fs.Int("shards", 1, "range-shard each database across N shards behind a merge coordinator (1 = unsharded)")
		rescan    = fs.Duration("follower-rescan", time.Second, "how often a follower rescans the store root for new databases")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "topkcleand: ", log.LstdFlags)
	if *follower != "" && *storeDir != "" {
		return fmt.Errorf("-follower and -store are mutually exclusive: a follower never writes the store it tails")
	}
	if _, ok := store.ByName(*backend); !ok {
		return fmt.Errorf("unknown -store-backend %q (registered: %s)", *backend, strings.Join(store.Drivers(), ", "))
	}
	if *follower != "" && *backend != "file" {
		return fmt.Errorf("-follower requires -store-backend file: following needs a store another process can share")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d: need at least 1", *shards)
	}
	if *follower != "" && *shards != 1 {
		return fmt.Errorf("-follower and -shards are mutually exclusive: sharded databases cannot be followed yet")
	}

	root := *storeDir
	if *follower != "" {
		root = *follower
	}
	srv := newServer(serverConfig{
		k:               *k,
		threshold:       *threshold,
		seed:            *seed,
		synthetic:       *synthetic,
		storeRoot:       root,
		storeBackend:    *backend,
		fsync:           *fsync,
		checkpointEvery: *ckptEvery,
		follower:        *follower != "",
		replicaPoll:     *polly,
		shards:          *shards,
	})
	if *follower != "" {
		// Follower startup: open every persisted database read-only, sync
		// to the journal tail, start tailing. Nothing is created — the
		// leader owns the data; this daemon only serves it. The rescan loop
		// then picks up databases the leader creates later.
		if err := srv.recoverFollowers(logger.Printf); err != nil {
			return err
		}
		go srv.followerRescanLoop(ctx, *rescan, logger.Printf)
	} else {
		// The file backend persists across restarts; recover what it holds.
		// (The mem backend is process-local: a fresh daemon has nothing to
		// recover, so the scan would only misread unrelated directories.)
		if *storeDir != "" && *backend == "file" {
			if err := srv.recoverTenants(logger.Printf); err != nil {
				return err
			}
		}
		if _, err := srv.tenant(defaultDB); err != nil {
			db, source, err := loadDatabase(*data, *synthetic, *seed)
			if err != nil {
				return err
			}
			if _, err := srv.addTenant(defaultDB, db, tenantConfig{}); err != nil {
				if errors.Is(err, store.ErrExists) {
					// recoverTenants skipped it (and said why above): refuse to
					// overwrite persisted data with a fresh database.
					return fmt.Errorf("a %q database exists under -store but failed to recover (see log above): %w", defaultDB, err)
				}
				return err
			}
			logger.Printf("created %s database from %s (%d x-tuples, %d tuples)",
				defaultDB, source, db.NumGroups(), db.NumTuples())
		}
	}
	// Warm the default database's memoized pass so the first request is
	// not the slow one; other tenants warm on first query. A follower may
	// legitimately have no default database — warm nothing then.
	if def, err := srv.tenant(defaultDB); err == nil {
		if err := def.warm(ctx); err != nil {
			return err
		}
	} else if *follower == "" {
		return err
	}
	durability := "ephemeral (no -store)"
	switch {
	case *follower != "":
		durability = fmt.Sprintf("read-only follower of %s (poll=%s)", *follower, *polly)
	case *storeDir != "":
		durability = fmt.Sprintf("durable under %s (backend=%s, fsync=%v, checkpoint-every=%d)", *storeDir, *backend, *fsync, *ckptEvery)
	}
	logger.Printf("serving %d database(s) at %s, default k=%d threshold=%g, %s",
		len(srv.tenantList()), *addr, *k, *threshold, durability)

	hsrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hsrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down (drain %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hsrv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.closeStores(logger.Printf)
	logger.Printf("bye")
	return nil
}

// newSynthetic generates the paper's synthetic workload (ByFirstAttr
// ranking, like every database this daemon serves).
func newSynthetic(xtuples int, seed int64) (*topkclean.Database, error) {
	return gen.SyntheticSized(xtuples, seed)
}

// loadDatabase reads -data (CSV or JSON by extension) or generates the
// synthetic workload of the paper's evaluation section.
func loadDatabase(path string, synthetic int, seed int64) (*topkclean.Database, string, error) {
	if path == "" {
		db, err := newSynthetic(synthetic, seed)
		if err != nil {
			return nil, "", err
		}
		return db, fmt.Sprintf("synthetic(%d)", synthetic), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var db *topkclean.Database
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		db, err = dataio.ReadJSON(f, topkclean.ByFirstAttr)
	default:
		db, err = dataio.ReadCSV(f, topkclean.ByFirstAttr)
	}
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return db, path, nil
}
