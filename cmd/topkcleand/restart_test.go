package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestMultiTenant drives the registry surface: create, list, isolate,
// legacy aliasing, and delete.
func TestMultiTenant(t *testing.T) {
	ts, _ := testServer(t, 40, 5)

	var list struct {
		DBs []dbInfoJSON `json:"dbs"`
	}
	getJSON(t, ts.URL+"/dbs", &list)
	if len(list.DBs) != 1 || list.DBs[0].Name != defaultDB {
		t.Fatalf("initial listing: %+v", list)
	}

	// Create a second database with its own k.
	var created dbInfoJSON
	status := postJSON(t, ts.URL+"/dbs", createRequest{Name: "alpha", Synthetic: 30, K: 4}, &created)
	if status != http.StatusCreated || created.K != 4 || created.XTuples != 30 || created.Durable {
		t.Fatalf("create: status %d %+v", status, created)
	}

	// Duplicate names conflict; path-unsafe names are rejected.
	var errOut map[string]any
	if status := postJSON(t, ts.URL+"/dbs", createRequest{Name: "alpha"}, &errOut); status != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", status)
	}
	if status := postJSON(t, ts.URL+"/dbs", createRequest{Name: "../evil"}, &errOut); status != http.StatusBadRequest {
		t.Fatalf("bad name: status %d", status)
	}

	// Inline datasets build verbatim.
	status = postJSON(t, ts.URL+"/dbs", createRequest{Name: "inline", K: 1, XTuples: []createXTuple{
		{Name: "S1", Tuples: []tupleJSON{{ID: "u1", Attrs: []float64{10}, Prob: 0.5}}},
		{Name: "S2", Tuples: []tupleJSON{{ID: "u2", Attrs: []float64{20}, Prob: 1}}},
	}}, &created)
	if status != http.StatusCreated || created.XTuples != 2 {
		t.Fatalf("inline create: status %d %+v", status, created)
	}
	var inlineTopK topkResponse
	getJSON(t, ts.URL+"/dbs/inline/topk", &inlineTopK)
	if inlineTopK.K != 1 || inlineTopK.GlobalTopK[0].ID != "u2" {
		t.Fatalf("inline answers: %+v", inlineTopK)
	}

	// Mutating one database does not touch another.
	var defBefore, alphaBefore topkResponse
	getJSON(t, ts.URL+"/dbs/default/topk", &defBefore)
	getJSON(t, ts.URL+"/dbs/alpha/topk", &alphaBefore)
	var mut mutateResponse
	status = postJSON(t, ts.URL+"/dbs/alpha/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert_absent", Name: "only-alpha"},
	}}, &mut)
	if status != http.StatusOK || mut.Version != alphaBefore.Version+1 || mut.OpsApplied != 1 {
		t.Fatalf("alpha mutate: status %d %+v", status, mut)
	}
	var defAfter topkResponse
	getJSON(t, ts.URL+"/dbs/default/topk", &defAfter)
	if defAfter.Version != defBefore.Version {
		t.Fatalf("mutating alpha moved default from v%d to v%d", defBefore.Version, defAfter.Version)
	}

	// Legacy routes alias the default database.
	var legacy, scoped topkResponse
	getJSON(t, ts.URL+"/topk", &legacy)
	getJSON(t, ts.URL+"/dbs/default/topk", &scoped)
	if legacy.Version != scoped.Version || legacy.Quality != scoped.Quality {
		t.Fatalf("legacy alias diverges: %+v vs %+v", legacy, scoped)
	}

	// Unknown databases 404; the default cannot be deleted; others can.
	if resp, err := http.Get(ts.URL + "/dbs/nope/topk"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown db: status %d", resp.StatusCode)
		}
	}
	if status := deleteReq(t, ts.URL+"/dbs/default"); status != http.StatusBadRequest {
		t.Fatalf("default delete: status %d", status)
	}
	if status := deleteReq(t, ts.URL+"/dbs/alpha"); status != http.StatusOK {
		t.Fatalf("alpha delete: status %d", status)
	}
	if resp, err := http.Get(ts.URL + "/dbs/alpha/topk"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("deleted db still serves: status %d", resp.StatusCode)
		}
	}
}

func deleteReq(t testing.TB, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// getBytes fetches a URL's raw response body — the restart test compares
// answers byte for byte (the JSON encoding of identical float bits is
// identical text).
func getBytes(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

// TestDaemonRestartRecovery is the in-process restart smoke test (the CI
// workflow runs the same sequence against the real binary with SIGTERM):
// run a durable daemon, create a second database, mutate both, apply a
// cleaning, then tear the daemon down and start a fresh one on the same
// store root. Every database must come back at its committed version and
// serve byte-identical /topk responses — and a *hard-kill* copy of the
// store (taken without the graceful flush) must recover identically too.
func TestDaemonRestartRecovery(t *testing.T) {
	root := t.TempDir()

	// First daemon lifetime. Built manually (not via testServerStore) so
	// the test controls exactly when stores flush.
	s1 := newServer(serverConfig{k: 5, threshold: 0.1, seed: 42, synthetic: 60,
		storeRoot: root, fsync: true, checkpointEvery: 256})
	if err := s1.recoverTenants(t.Logf); err != nil {
		t.Fatal(err)
	}
	db, err := newSynthetic(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.addTenant(defaultDB, db, tenantConfig{}); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)

	var created dbInfoJSON
	if status := postJSON(t, ts1.URL+"/dbs", createRequest{Name: "beta", Synthetic: 40, K: 4}, &created); status != http.StatusCreated || !created.Durable {
		t.Fatalf("beta create: status %d %+v", status, created)
	}
	var mut mutateResponse
	if status := postJSON(t, ts1.URL+"/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert", Name: "hot", Tuples: []tupleJSON{{ID: "hot.a", Attrs: []float64{1e6}, Prob: 0.9}}},
		{Op: "collapse", Group: 2, Choice: 0},
	}}, &mut); status != http.StatusOK {
		t.Fatalf("default mutate: status %d", status)
	}
	if status := postJSON(t, ts1.URL+"/dbs/beta/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert_absent", Name: "ghost"},
		{Op: "collapse", Group: 1, Choice: 0},
	}}, &mut); status != http.StatusOK {
		t.Fatalf("beta mutate: status %d", status)
	}
	var applied applyResponse
	if status := postJSON(t, ts1.URL+"/apply", applyRequest{Planner: "greedy", Budget: 4}, &applied); status != http.StatusOK {
		t.Fatalf("apply: status %d %+v", status, applied)
	}

	wantDefault := getBytes(t, ts1.URL+"/topk")
	wantBeta := getBytes(t, ts1.URL+"/dbs/beta/topk")

	// Hard-kill image: the bytes on disk right now, before any graceful
	// flush. Every commit was fsynced, so this is what SIGKILL leaves.
	killRoot := t.TempDir()
	copyTree(t, root, killRoot)

	// Graceful shutdown.
	ts1.Close()
	s1.closeStores(t.Logf)

	for _, tc := range []struct {
		name string
		root string
	}{
		{"graceful", root},
		{"hard-kill", killRoot},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts2, s2 := testServerStore(t, 60, 5, tc.root)
			if got := len(s2.tenantList()); got != 2 {
				t.Fatalf("recovered %d databases, want 2", got)
			}
			if got := getBytes(t, ts2.URL+"/topk"); string(got) != string(wantDefault) {
				t.Fatalf("default answers not bit-identical after restart:\ngot  %s\nwant %s", got, wantDefault)
			}
			if got := getBytes(t, ts2.URL+"/dbs/beta/topk"); string(got) != string(wantBeta) {
				t.Fatalf("beta answers not bit-identical after restart:\ngot  %s\nwant %s", got, wantBeta)
			}
			// beta's serving config (k=4) came back from tenant.json.
			var info struct {
				DBs []dbInfoJSON `json:"dbs"`
			}
			getJSON(t, ts2.URL+"/dbs", &info)
			for _, d := range info.DBs {
				if d.Name == "beta" && d.K != 4 {
					t.Fatalf("beta recovered with k=%d, want 4", d.K)
				}
				if !d.Durable {
					t.Fatalf("%s recovered as ephemeral", d.Name)
				}
			}
		})
	}
}

// copyTree copies a store root (directories of flat files).
func copyTree(t testing.TB, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
