package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/probdb/topkclean/internal/gen"
)

// testServer builds an ephemeral daemon over a small synthetic workload,
// registered as the default database.
func testServer(t testing.TB, xtuples, k int) (*httptest.Server, *server) {
	return testServerStore(t, xtuples, k, "")
}

// testServerStore is testServer with a persistence root ("" = ephemeral):
// the default database is recovered from the store when present there,
// created and persisted otherwise — the daemon's startup path in miniature.
func testServerStore(t testing.TB, xtuples, k int, storeRoot string) (*httptest.Server, *server) {
	t.Helper()
	s := newServer(serverConfig{
		k: k, threshold: 0.1, seed: 42, synthetic: xtuples,
		storeRoot: storeRoot, fsync: true, checkpointEvery: 256,
	})
	if storeRoot != "" {
		if err := s.recoverTenants(t.Logf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.tenant(defaultDB); err != nil {
		db, err := gen.SyntheticSized(xtuples, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.addTenant(defaultDB, db, tenantConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.closeStores(t.Logf)
	})
	return ts, s
}

func getJSON(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("GET %s: %d %v", url, resp.StatusCode, e)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t testing.TB, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// TestHTTPSmoke is the CI smoke test: start the daemon, query /topk, apply
// a mutation, re-query and observe the new version, then plan and apply a
// cleaning over HTTP.
func TestHTTPSmoke(t *testing.T) {
	ts, _ := testServer(t, 60, 5)

	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	var before topkResponse
	getJSON(t, ts.URL+"/topk", &before)
	if before.K != 5 || len(before.GlobalTopK) != 5 || before.Quality > 0 {
		t.Fatalf("topk: %+v", before)
	}
	if len(before.UKRanks) == 0 || len(before.PTK) == 0 {
		t.Fatalf("empty answers: %+v", before)
	}

	// A tight threshold must not loosen the PT-k answer.
	var tight topkResponse
	getJSON(t, ts.URL+"/topk?threshold=0.95", &tight)
	if len(tight.PTK) > len(before.PTK) {
		t.Fatalf("PTK grew under a tighter threshold: %d -> %d", len(before.PTK), len(tight.PTK))
	}

	// Mutate: insert a dominating x-tuple plus an absent one, one commit.
	top := before.GlobalTopK[0].Score
	var mut mutateResponse
	status := postJSON(t, ts.URL+"/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert", Name: "hot", Tuples: []tupleJSON{{ID: "hot.a", Attrs: []float64{top + 10}, Prob: 0.9}}},
		{Op: "insert_absent", Name: "ghost"},
	}}, &mut)
	if status != http.StatusOK {
		t.Fatalf("mutate: status %d", status)
	}
	if mut.Version != before.Version+1 {
		t.Fatalf("mutate version: %d, want %d (one commit for the whole batch)", mut.Version, before.Version+1)
	}

	var after topkResponse
	getJSON(t, ts.URL+"/topk", &after)
	if after.Version != mut.Version {
		t.Fatalf("topk after mutate: version %d, want %d", after.Version, mut.Version)
	}
	if after.GlobalTopK[0].ID != "hot.a" {
		t.Fatalf("dominating insert not in answers: %+v", after.GlobalTopK[0])
	}

	// Plan a cleaning; certain probes, budget 4.
	var plan planResponse
	status = postJSON(t, ts.URL+"/plan", planRequest{Planner: "greedy", Budget: 4}, &plan)
	if status != http.StatusOK || plan.Version != after.Version || plan.Ops == 0 {
		t.Fatalf("plan: status %d %+v", status, plan)
	}
	if plan.ExpectedImprovement <= 0 {
		t.Fatalf("plan expected improvement: %v", plan.ExpectedImprovement)
	}

	// A stale optimistic-concurrency token is refused with 409.
	var staleOut map[string]any
	status = postJSON(t, ts.URL+"/apply", applyRequest{Planner: "greedy", Budget: 4, Version: before.Version}, &staleOut)
	if status != http.StatusConflict {
		t.Fatalf("stale apply: status %d %v", status, staleOut)
	}

	// Apply for real: certain probes mean quality must not get worse.
	var applied applyResponse
	status = postJSON(t, ts.URL+"/apply", applyRequest{Planner: "greedy", Budget: 4, Version: after.Version}, &applied)
	if status != http.StatusOK {
		t.Fatalf("apply: status %d %+v", status, applied)
	}
	if applied.Version != after.Version+1 {
		t.Fatalf("apply version: %d, want %d", applied.Version, after.Version+1)
	}
	if applied.Improvement < 0 || applied.NewQuality < applied.OldQuality {
		t.Fatalf("apply regressed quality: %+v", applied)
	}

	var final topkResponse
	getJSON(t, ts.URL+"/topk", &final)
	if final.Version != applied.Version || final.Quality != applied.NewQuality {
		t.Fatalf("final: %+v vs applied %+v", final, applied)
	}

	var stats statsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Version != final.Version || stats.XTuples == 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestMutateValidation: bad ops are rejected with 400 and a message.
func TestMutateValidation(t *testing.T) {
	ts, _ := testServer(t, 20, 3)
	var out map[string]any
	status := postJSON(t, ts.URL+"/mutate", mutateRequest{Ops: []mutateOp{{Op: "warp", Group: 1}}}, &out)
	if status != http.StatusBadRequest || out["error"] == "" {
		t.Fatalf("unknown op: status %d %v", status, out)
	}
	if out["ops_applied"].(float64) != 0 {
		t.Fatalf("unknown op applied something: %v", out)
	}
	status = postJSON(t, ts.URL+"/mutate", mutateRequest{}, &out)
	if status != http.StatusBadRequest {
		t.Fatalf("empty ops: status %d", status)
	}
	status = postJSON(t, ts.URL+"/mutate", mutateRequest{Ops: []mutateOp{{Op: "delete", Group: 9999}}}, &out)
	if status != http.StatusBadRequest {
		t.Fatalf("bad group: status %d", status)
	}

	// Partial commit is detectable: the first op lands (and commits), the
	// second fails — the error response reports ops_applied=1 and the
	// bumped version.
	var before statsResponse
	getJSON(t, ts.URL+"/stats", &before)
	status = postJSON(t, ts.URL+"/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert_absent", Name: "partial-ok"},
		{Op: "delete", Group: 9999},
	}}, &out)
	if status != http.StatusBadRequest {
		t.Fatalf("partial batch: status %d", status)
	}
	if out["ops_applied"].(float64) != 1 || uint64(out["version"].(float64)) != before.Version+1 {
		t.Fatalf("partial batch not reported: %v (base version %d)", out, before.Version)
	}

	// Non-finite thresholds are rejected (a NaN key would leak in the
	// coalescer).
	resp, err := http.Get(ts.URL + "/topk?threshold=NaN")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN threshold: status %d", resp.StatusCode)
	}
}

// TestCoalescer: concurrent identical requests share one computation.
func TestCoalescer(t *testing.T) {
	var c coalescer
	c.inflight = make(map[coalKey]*coalCall)
	const n = 16
	var computed int
	gate := make(chan struct{})
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := c.do(coalKey{version: 1, threshold: 0.1}, func() ([]byte, error) {
				mu.Lock()
				computed++
				mu.Unlock()
				<-gate // hold the call open so followers pile up
				return []byte("x"), nil
			})
			if err != nil || string(body) != "x" {
				t.Errorf("do: %q %v", body, err)
			}
		}()
	}
	// Let followers enqueue, then release the leader(s).
	for c.coalesced.Load() == 0 {
	}
	close(gate)
	wg.Wait()
	if computed == n {
		t.Fatalf("no coalescing happened (%d computations for %d requests)", computed, n)
	}
	if got := c.coalesced.Load(); got == 0 {
		t.Fatal("coalesced counter stayed zero")
	}
	if len(c.inflight) != 0 {
		t.Fatalf("inflight map leaked %d entries", len(c.inflight))
	}
	// Distinct keys never coalesce.
	b1, _ := c.do(coalKey{version: 2, threshold: 0.1}, func() ([]byte, error) { return []byte("a"), nil })
	b2, _ := c.do(coalKey{version: 2, threshold: 0.2}, func() ([]byte, error) { return []byte("b"), nil })
	if string(b1) != "a" || string(b2) != "b" {
		t.Fatalf("distinct keys shared a result: %q %q", b1, b2)
	}
}

// TestServeConcurrentMutateAndQuery hammers /topk from several goroutines
// while /mutate streams batches — the HTTP-level readers-vs-writer check
// (run under -race in CI). Every response must be internally consistent
// and versions must be monotone per client.
func TestServeConcurrentMutateAndQuery(t *testing.T) {
	ts, _ := testServer(t, 80, 5)
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var res topkResponse
				resp, err := http.Get(ts.URL + "/topk")
				if err != nil {
					errs <- err
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if res.Version < last {
					errs <- fmt.Errorf("version regressed: %d after %d", res.Version, last)
					return
				}
				last = res.Version
				if len(res.GlobalTopK) != 5 || res.Quality > 0 {
					errs <- fmt.Errorf("inconsistent answer at v%d: %+v", res.Version, res)
					return
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		var mut mutateResponse
		status := postJSON(t, ts.URL+"/mutate", mutateRequest{Ops: []mutateOp{
			{Op: "insert", Name: fmt.Sprintf("m%d", i),
				Tuples: []tupleJSON{{ID: fmt.Sprintf("m%d.a", i), Attrs: []float64{float64(i)}, Prob: 0.5}}},
		}}, &mut)
		if status != http.StatusOK {
			t.Fatalf("mutate %d: status %d", i, status)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
