package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/probdb/topkclean/internal/gen"
)

// shardedServerStore is testServerStore with a default shard count: the
// default database is created (or recovered) range-sharded when shards > 1.
func shardedServerStore(t testing.TB, xtuples, k, shards int, storeRoot string) (*httptest.Server, *server) {
	t.Helper()
	s := newServer(serverConfig{
		k: k, threshold: 0.1, seed: 42, synthetic: xtuples,
		storeRoot: storeRoot, fsync: true, checkpointEvery: 256,
		shards: shards,
	})
	if storeRoot != "" {
		if err := s.recoverTenants(t.Logf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.tenant(defaultDB); err != nil {
		db, err := gen.SyntheticSized(xtuples, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.addTenant(defaultDB, db, tenantConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.closeStores(t.Logf)
	})
	return ts, s
}

// shardedMutate posts the same batch to both daemons and requires the
// identical status and version — the sharded router must keep the
// unsharded engine's commit semantics (prefix-on-failure included).
func shardedMutate(t *testing.T, shardedURL, plainURL string, ops []mutateOp) {
	t.Helper()
	var sresp, presp mutateResponse
	scode := postJSON(t, shardedURL+"/mutate", mutateRequest{Ops: ops}, &sresp)
	pcode := postJSON(t, plainURL+"/mutate", mutateRequest{Ops: ops}, &presp)
	if scode != pcode {
		t.Fatalf("mutate status diverged: sharded %d, unsharded %d", scode, pcode)
	}
	if sresp != presp {
		t.Fatalf("mutate response diverged:\nsharded:   %+v\nunsharded: %+v", sresp, presp)
	}
}

// TestShardedHTTPDifferential serves the same database twice — once behind
// a 4-shard merge coordinator, once unsharded — drives both through an
// identical script, and requires byte-identical response bodies at every
// step. This is the HTTP layer of the cross-shard bit-identity battery.
func TestShardedHTTPDifferential(t *testing.T) {
	sts, ssrv := shardedServerStore(t, 60, 5, 4, "")
	pts, _ := shardedServerStore(t, 60, 5, 1, "")

	compare := func(step string) {
		t.Helper()
		for _, q := range []string{"/topk", "/topk?threshold=0.4", "/quality", "/quality?k=3", "/quality?k=1"} {
			sameBytes(t, step+" "+q, sts.URL+q, pts.URL+q)
		}
	}
	compare("initial")

	// Inserts spanning the score range (top, middle, bottom), a collapse,
	// a delete, and an absent insert — every op kind the router handles.
	var before topkResponse
	getJSON(t, sts.URL+"/topk", &before)
	top := before.GlobalTopK[0].Score
	shardedMutate(t, sts.URL, pts.URL, []mutateOp{
		{Op: "insert", Name: "hi", Tuples: []tupleJSON{{ID: "hi.a", Attrs: []float64{top + 5}, Prob: 0.7}}},
		{Op: "insert", Name: "lo", Tuples: []tupleJSON{{ID: "lo.a", Attrs: []float64{-100}, Prob: 0.4}, {ID: "lo.b", Attrs: []float64{-200}, Prob: 0.5}}},
		{Op: "insert_absent", Name: "ghost"},
	})
	compare("after inserts")

	// A straddling insert: alternatives of one x-tuple landing in different
	// shards' score ranges forces the router's pull-up rebalance.
	shardedMutate(t, sts.URL, pts.URL, []mutateOp{
		{Op: "insert", Name: "straddle", Tuples: []tupleJSON{
			{ID: "st.a", Attrs: []float64{top + 1}, Prob: 0.3},
			{ID: "st.b", Attrs: []float64{0}, Prob: 0.3},
			{ID: "st.c", Attrs: []float64{-150}, Prob: 0.3},
		}},
	})
	compare("after straddle")

	shardedMutate(t, sts.URL, pts.URL, []mutateOp{
		{Op: "delete", Group: 3},
		{Op: "collapse", Group: 7, Choice: 0},
	})
	compare("after delete+reweight")

	// Failing batches must diverge identically too: same status, same
	// applied prefix, same version.
	shardedMutate(t, sts.URL, pts.URL, []mutateOp{
		{Op: "insert_absent", Name: "prefix-ok"},
		{Op: "delete", Group: 99999},
	})
	compare("after partial batch")

	// /stats on the sharded side exposes the per-shard breakdown; the
	// totals must agree with the unsharded daemon.
	var sstats, pstats statsResponse
	getJSON(t, sts.URL+"/stats", &sstats)
	getJSON(t, pts.URL+"/stats", &pstats)
	if len(sstats.Shards) != 4 {
		t.Fatalf("sharded stats: %d shard entries, want 4", len(sstats.Shards))
	}
	if sstats.Version != pstats.Version || sstats.XTuples != pstats.XTuples ||
		sstats.Tuples != pstats.Tuples || sstats.RealTuples != pstats.RealTuples {
		t.Fatalf("sharded totals diverged:\nsharded:   %+v\nunsharded: %+v", sstats, pstats)
	}
	groups, tuples := 0, 0
	for _, st := range sstats.Shards {
		groups += st.Groups
		tuples += st.Tuples
	}
	if groups != sstats.XTuples || tuples != sstats.Tuples {
		t.Fatalf("per-shard sizes sum to %d groups / %d tuples, cluster reports %d / %d",
			groups, tuples, sstats.XTuples, sstats.Tuples)
	}

	// Budgeted cleaning is not sharded yet: /plan and /apply are refused
	// with 400 and a message that says so, and nothing commits.
	for _, path := range []string{"/plan", "/apply"} {
		var errBody map[string]any
		code := postJSON(t, sts.URL+path, planRequest{Planner: "greedy", Budget: 3}, &errBody)
		if code != http.StatusBadRequest {
			t.Fatalf("%s on sharded db: status %d, want 400", path, code)
		}
		msg, _ := errBody["error"].(string)
		if !strings.Contains(msg, "sharded") {
			t.Fatalf("%s error body does not explain the refusal: %v", path, errBody)
		}
	}
	compare("after refused cleaning")

	// /dbs reports the shard count.
	var dbs struct {
		DBs []dbInfoJSON `json:"dbs"`
	}
	getJSON(t, sts.URL+"/dbs", &dbs)
	if len(dbs.DBs) != 1 || dbs.DBs[0].Shards != 4 {
		t.Fatalf("sharded /dbs info: %+v", dbs.DBs)
	}

	// Per-tenant shard counts: a sharded database created over HTTP on the
	// unsharded daemon serves and reports its own shard count.
	var created dbInfoJSON
	if code := postJSON(t, pts.URL+"/dbs", createRequest{Name: "pershard", Synthetic: 25, Shards: 2}, &created); code != http.StatusCreated {
		t.Fatalf("create sharded tenant: %d", code)
	}
	if created.Shards != 2 {
		t.Fatalf("created tenant info: %+v", created)
	}
	var ptopk topkResponse
	getJSON(t, pts.URL+"/dbs/pershard/topk", &ptopk)
	if len(ptopk.GlobalTopK) == 0 {
		t.Fatalf("sharded tenant serves nothing: %+v", ptopk)
	}

	// deleteTenant closes the cluster cleanly (ephemeral: nothing on disk).
	if err := ssrv.deleteTenant("nope"); err == nil {
		t.Fatal("deleting a missing tenant succeeded")
	}
}

// TestShardedDurableRestart: a sharded database persisted under -store is
// recovered bit-identically after a restart, dispatched by tenant.json's
// shards field onto the per-shard journal layout.
func TestShardedDurableRestart(t *testing.T) {
	root := t.TempDir()
	ts1, srv1 := shardedServerStore(t, 40, 5, 3, root)

	var mut mutateResponse
	if code := postJSON(t, ts1.URL+"/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert", Name: "dx", Tuples: []tupleJSON{{ID: "d1", Attrs: []float64{77}, Prob: 0.6}, {ID: "d2", Attrs: []float64{-5}, Prob: 0.3}}},
		{Op: "insert_absent", Name: "dghost"},
		{Op: "collapse", Group: 2, Choice: 0},
	}}, &mut); code != http.StatusOK {
		t.Fatalf("mutate: %d", code)
	}
	topkBefore := getBytes(t, ts1.URL+"/topk")
	qualBefore := getBytes(t, ts1.URL+"/quality")

	var stats1 statsResponse
	getJSON(t, ts1.URL+"/stats", &stats1)
	if !stats1.Durable || len(stats1.Shards) != 3 {
		t.Fatalf("pre-restart stats: durable=%v shards=%d", stats1.Durable, len(stats1.Shards))
	}

	// Restart: flush, close, recover into a fresh server.
	ts1.Close()
	srv1.closeStores(t.Logf)
	ts2, srv2 := shardedServerStore(t, 40, 5, 3, root)
	rt, err := srv2.tenant(defaultDB)
	if err != nil {
		t.Fatal(err)
	}
	if rt.clu == nil || !rt.cluDurable || rt.cfg.Shards != 3 {
		t.Fatalf("recovered tenant is not a durable 3-shard cluster: clu=%v durable=%v cfg=%+v", rt.clu != nil, rt.cluDurable, rt.cfg)
	}
	if got := getBytes(t, ts2.URL+"/topk"); string(got) != string(topkBefore) {
		t.Fatalf("topk diverged across restart:\nbefore: %s\nafter:  %s", topkBefore, got)
	}
	if got := getBytes(t, ts2.URL+"/quality"); string(got) != string(qualBefore) {
		t.Fatalf("quality diverged across restart:\nbefore: %s\nafter:  %s", qualBefore, got)
	}

	// The recovered cluster keeps accepting writes and stays durable.
	if code := postJSON(t, ts2.URL+"/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert_absent", Name: "post-restart"},
	}}, &mut); code != http.StatusOK {
		t.Fatalf("post-restart mutate: %d", code)
	}
	if mut.Version != stats1.Version+1 {
		t.Fatalf("post-restart version %d, want %d", mut.Version, stats1.Version+1)
	}

	// Deleting a durable sharded tenant removes its storage for good.
	var created dbInfoJSON
	if code := postJSON(t, ts2.URL+"/dbs", createRequest{Name: "bye", Synthetic: 15, Shards: 2}, &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if err := srv2.deleteTenant("bye"); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	srv2.closeStores(t.Logf)
	ts3, srv3 := shardedServerStore(t, 40, 5, 3, root)
	defer ts3.Close()
	if _, err := srv3.tenant("bye"); err == nil {
		t.Fatal("deleted sharded tenant resurrected after restart")
	}
}

// TestFollowerPicksUpNewDatabases: a follower discovers databases the
// leader creates after the follower started — via an explicit rescan and
// via the background rescan loop — and skips sharded ones (their layout
// cannot be followed yet) without disturbing the rest.
func TestFollowerPicksUpNewDatabases(t *testing.T) {
	root := t.TempDir()
	lts, _ := testServerStore(t, 30, 5, root)
	fts, fsrv := followerServer(t, root)

	// The follower only knows the default database so far.
	if got := len(fsrv.tenantList()); got != 1 {
		t.Fatalf("follower starts with %d tenants, want 1", got)
	}

	// Leader creates a database after the follower started, and commits to it.
	var created dbInfoJSON
	if code := postJSON(t, lts.URL+"/dbs", createRequest{Name: "late", Synthetic: 20}, &created); code != http.StatusCreated {
		t.Fatalf("create late db: %d", code)
	}
	var mut mutateResponse
	if code := postJSON(t, lts.URL+"/dbs/late/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "insert", Name: "lx", Tuples: []tupleJSON{{ID: "l1", Attrs: []float64{33}, Prob: 0.8}}},
	}}, &mut); code != http.StatusOK {
		t.Fatalf("mutate late db: %d", code)
	}

	// A sharded database must be skipped by the rescan, not break it.
	if code := postJSON(t, lts.URL+"/dbs", createRequest{Name: "shardy", Synthetic: 15, Shards: 2}, new(dbInfoJSON)); code != http.StatusCreated {
		t.Fatalf("create sharded db: %d", code)
	}

	fsrv.rescanFollowers(t.Logf)
	if _, err := fsrv.tenant("late"); err != nil {
		t.Fatalf("rescan did not pick up the new database: %v", err)
	}
	if _, err := fsrv.tenant("shardy"); err == nil {
		t.Fatal("rescan attached a sharded database it cannot follow")
	}
	waitConverged(t, fsrv, "late", mut.Version)
	sameBytes(t, "late topk", lts.URL+"/dbs/late/topk", fts.URL+"/dbs/late/topk")
	sameBytes(t, "late quality", lts.URL+"/dbs/late/quality", fts.URL+"/dbs/late/quality")

	// A rescan is idempotent: already-followed databases are left alone.
	before := len(fsrv.tenantList())
	fsrv.rescanFollowers(t.Logf)
	if got := len(fsrv.tenantList()); got != before {
		t.Fatalf("idempotent rescan changed the tenant count: %d -> %d", before, got)
	}

	// The background loop does the same without being called by hand.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fsrv.followerRescanLoop(ctx, 2*time.Millisecond, t.Logf)
	if code := postJSON(t, lts.URL+"/dbs", createRequest{Name: "later", Synthetic: 12}, &created); code != http.StatusCreated {
		t.Fatalf("create later db: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := fsrv.tenant("later"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rescan loop never picked up the new database")
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitConverged(t, fsrv, "later", 0)
	sameBytes(t, "later topk", lts.URL+"/dbs/later/topk", fts.URL+"/dbs/later/topk")
}
