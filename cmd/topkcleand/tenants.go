package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/replica"
	"github.com/probdb/topkclean/internal/shard"
	"github.com/probdb/topkclean/internal/store"
)

// A tenant is one named database with everything serving it: the engine
// (queries, planning), the optional persistence handle (nil = ephemeral),
// the replica handle on follower daemons, the per-tenant query coalescer,
// and the write mutex that keeps WAL order equal to commit order across
// /mutate and /apply. A sharded tenant (created with shards > 1) serves
// through clu instead of eng: the range-sharded cluster owns its own
// per-shard stores and merge coordinator (see DESIGN.md "Sharded
// serving").
type tenant struct {
	name       string
	eng        *topkclean.Engine
	clu        *shard.Cluster   // non-nil: sharded serving (leaders only)
	cluDurable bool             // the cluster journals its shards under -store
	sdb        *store.DB        // nil when the daemon runs without -store
	rep        *replica.Replica // non-nil on follower daemons
	cfg        tenantConfig
	coal       coalescer
	applies    atomic.Int64 // per-apply rng decorrelation counter
	writeMu    sync.Mutex   // serializes journaled writes; queries never take it
	engMu      sync.Mutex   // follower only: guards the engine rebuild below
	engGen     uint64       // replica generation the current engine was built on
	created    time.Time
}

// durable reports whether the tenant survives restarts (its own journal,
// or — on a follower — the leader's).
func (t *tenant) durable() bool { return t.sdb != nil || t.rep != nil || t.cluDurable }

// version is the tenant's current committed version, whichever layer
// serves it.
func (t *tenant) version() uint64 {
	if t.clu != nil {
		return t.clu.Version()
	}
	return t.engine().DB().Snapshot().Version()
}

// k and threshold are the tenant's query defaults.
func (t *tenant) k() int {
	if t.clu != nil {
		return t.clu.K()
	}
	return t.engine().K()
}

func (t *tenant) threshold() float64 {
	if t.clu != nil {
		return t.clu.Threshold()
	}
	return t.engine().Threshold()
}

// answersThreshold answers the three top-k semantics plus quality from
// one pinned epoch — through the merge coordinator on sharded tenants,
// the engine otherwise. Both layers produce bit-identical answers (the
// shard package's differential battery pins this), so callers never know
// which served them.
func (t *tenant) answersThreshold(ctx context.Context, threshold float64) (*topkclean.Result, error) {
	if t.clu == nil {
		return t.engine().AnswersThreshold(ctx, threshold)
	}
	r, err := t.clu.AnswersThreshold(ctx, threshold)
	if err != nil {
		return nil, err
	}
	return &topkclean.Result{
		K:          r.K,
		Threshold:  r.Threshold,
		Version:    r.Version,
		UKRanks:    r.UKRanks,
		PTK:        r.PTK,
		GlobalTopK: r.GlobalTopK,
		Quality:    r.Quality,
	}, nil
}

// qualityAtVersion evaluates the PWS-quality at an explicit k.
func (t *tenant) qualityAtVersion(ctx context.Context, k int) (float64, uint64, error) {
	if t.clu != nil {
		return t.clu.QualityAtVersion(ctx, k)
	}
	return t.engine().QualityAtVersion(ctx, k)
}

// warm runs the tenant's memoized answer pass once, so the first request
// is not the slow one.
func (t *tenant) warm(ctx context.Context) error {
	var err error
	if t.clu != nil {
		_, err = t.clu.Answers(ctx)
	} else {
		_, err = t.engine().Answers(ctx)
	}
	return err
}

// engine returns the engine to serve queries from. On a leader it is the
// tenant's engine, fixed for the tenant's lifetime. On a follower the
// replica's incremental tailing keeps the same database (and the engine's
// snapshot-keyed memoization stays warm across replicated commits), but a
// resync — the leader checkpointed past this follower — replaces the
// database wholesale; the engine is then rebuilt over the new one, keyed
// by the replica's generation. A rebuild failure keeps serving the
// previous engine (bounded staleness beats an outage) and retries on the
// next request.
func (t *tenant) engine() *topkclean.Engine {
	if t.rep == nil {
		return t.eng
	}
	t.engMu.Lock()
	defer t.engMu.Unlock()
	if gen := t.rep.Generation(); gen != t.engGen {
		eng, err := topkclean.New(t.rep.DB(),
			topkclean.WithK(t.cfg.K),
			topkclean.WithPTKThreshold(t.cfg.Threshold),
			topkclean.WithSeed(t.cfg.Seed))
		if err == nil {
			t.eng = eng
			t.engGen = gen
		}
	}
	return t.eng
}

// tenantConfig is the per-database serving configuration, persisted as
// tenant.json next to the journal so a restart recovers not just the data
// but the query shape (k, threshold) and the ranking function it was
// being served with. Rank names a function ("first" | "sum"; empty means
// "first") — it must match what the database was built with, and
// recovery verifies the persisted rank order against it.
type tenantConfig struct {
	K         int     `json:"k"`
	Threshold float64 `json:"threshold"`
	Seed      int64   `json:"seed"`
	Rank      string  `json:"rank,omitempty"`
	Shards    int     `json:"shards,omitempty"` // > 1: range-sharded serving
}

// rankFunc resolves the persisted ranking-function name through the
// library's shared registry (the same names the CLI's -rank flags use).
func (c tenantConfig) rankFunc() (topkclean.RankFunc, error) {
	rank, err := topkclean.RankByName(c.Rank)
	if err != nil {
		return nil, fmt.Errorf("tenant.json: %w", err)
	}
	return rank, nil
}

const tenantConfigName = "tenant.json"

// defaultDB is the database the legacy single-database routes alias to.
const defaultDB = "default"

// tenantNameRE bounds database names to path-safe tokens: they become
// directory names under -store, so no separators, no leading dot.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

var (
	errTenantExists  = errors.New("database already exists")
	errTenantMissing = errors.New("no such database")
	errBadName       = errors.New("database names are 1-64 chars of [A-Za-z0-9_.-], not starting with a dot")
)

// tenant looks a tenant up by name.
func (s *server) tenant(name string) (*tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errTenantMissing, name)
	}
	return t, nil
}

// tenantList returns the tenants sorted by name.
func (s *server) tenantList() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// addTenant registers a freshly built database under name, persisting it
// first when the daemon has a store root. The database must be built; cfg
// zero-values fall back to the daemon defaults. The registry lock is held
// only to reserve the name and to install the finished tenant — the disk
// work (full-database wire encode + fsyncs) runs outside it, so creating
// a large database never stalls requests against existing tenants.
func (s *server) addTenant(name string, db *topkclean.Database, cfg tenantConfig) (*tenant, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, errBadName
	}
	if cfg.K <= 0 {
		cfg.K = s.cfg.k
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = s.cfg.threshold
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.cfg.seed
	}
	if cfg.Shards <= 0 {
		cfg.Shards = s.cfg.shards
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	s.mu.Lock()
	if _, ok := s.tenants[name]; ok || s.creating[name] {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", errTenantExists, name)
	}
	s.creating[name] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.creating, name)
		s.mu.Unlock()
	}()

	if cfg.Shards > 1 {
		t, err := s.addShardTenant(name, db, cfg)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.tenants[name] = t
		s.mu.Unlock()
		return t, nil
	}

	var sdb *store.DB
	if s.cfg.storeRoot != "" {
		dir := s.tenantPath(name)
		backend, err := store.OpenBackend(s.cfg.storeBackend, dir)
		if err != nil {
			return nil, err
		}
		sdb, err = store.Create(backend, db, s.storeOptions()...)
		if err != nil {
			backend.Close()
			s.dropTenantStorage(name)
			return nil, err
		}
		// tenant.json lives next to the journal; only the file backend has
		// a directory to keep it in (mem tenants die with the process, so
		// there is nothing to recover a config for).
		if s.cfg.storeBackend == "file" {
			if err := writeTenantConfig(dir, cfg); err != nil {
				sdb.Close()
				s.dropTenantStorage(name) // leave no half-created store a retry would trip over
				return nil, err
			}
		}
	}
	t, err := s.newTenant(name, db, sdb, nil, cfg)
	if err != nil {
		if sdb != nil {
			sdb.Close()
			s.dropTenantStorage(name)
		}
		return nil, err
	}
	s.mu.Lock()
	s.tenants[name] = t
	s.mu.Unlock()
	return t, nil
}

// addShardTenant splits a built database across cfg.Shards range shards
// behind a merge coordinator. With -store, the cluster journals each
// shard (plus its placement directory) under the tenant directory; the
// per-shard layout is the shard package's, not the flat single-journal
// one, so tenant.json's shards field is what recovery dispatches on.
func (s *server) addShardTenant(name string, db *topkclean.Database, cfg tenantConfig) (*tenant, error) {
	scfg := shard.Config{Shards: cfg.Shards, K: cfg.K, Threshold: cfg.Threshold, Rank: db.Rank()}
	durable := s.cfg.storeRoot != ""
	if durable {
		scfg.Backend = s.cfg.storeBackend
		scfg.Path = s.tenantPath(name)
		scfg.StoreOpts = s.storeOptions()
	}
	clu, err := shard.FromDatabase(db, scfg)
	if err != nil {
		if durable {
			s.dropShardStorage(name, cfg.Shards)
		}
		return nil, err
	}
	if durable && s.cfg.storeBackend == "file" {
		if err := writeTenantConfig(s.tenantPath(name), cfg); err != nil {
			clu.Close()
			s.dropShardStorage(name, cfg.Shards)
			return nil, err
		}
	}
	t := &tenant{name: name, clu: clu, cluDurable: durable, cfg: cfg, created: time.Now()}
	t.coal.inflight = make(map[coalKey]*coalCall)
	return t, nil
}

// dropShardStorage removes a sharded tenant's persisted state: the whole
// directory on the file backend, each shard journal plus the meta journal
// on mem.
func (s *server) dropShardStorage(name string, shards int) {
	dir := s.tenantPath(name)
	switch s.cfg.storeBackend {
	case "file":
		os.RemoveAll(dir)
	case "mem":
		for i := 0; i < shards; i++ {
			store.DropMem(filepath.Join(dir, fmt.Sprintf("shard-%d", i)))
		}
		store.DropMem(filepath.Join(dir, "meta"))
	}
}

// tenantPath is where a tenant's journal lives: a directory for the file
// backend, an opaque process-local key for mem.
func (s *server) tenantPath(name string) string {
	return filepath.Join(s.cfg.storeRoot, name)
}

// dropTenantStorage removes whatever the tenant's backend keeps at its
// path — the cleanup half of create failures and deletions.
func (s *server) dropTenantStorage(name string) {
	switch s.cfg.storeBackend {
	case "file":
		os.RemoveAll(s.tenantPath(name))
	case "mem":
		store.DropMem(s.tenantPath(name))
	}
}

// newTenant wires the engine and serving state for a database.
func (s *server) newTenant(name string, db *topkclean.Database, sdb *store.DB, rep *replica.Replica, cfg tenantConfig) (*tenant, error) {
	eng, err := topkclean.New(db,
		topkclean.WithK(cfg.K),
		topkclean.WithPTKThreshold(cfg.Threshold),
		topkclean.WithSeed(cfg.Seed))
	if err != nil {
		return nil, err
	}
	t := &tenant{name: name, eng: eng, sdb: sdb, rep: rep, cfg: cfg, created: time.Now()}
	t.coal.inflight = make(map[coalKey]*coalCall)
	return t, nil
}

// recoverTenants opens every database persisted under the store root —
// the startup path after a restart or a crash. Directories that do not
// hold a database (or fail to recover) are reported and skipped, so one
// corrupt tenant cannot take the whole daemon down.
func (s *server) recoverTenants(logf func(format string, args ...any)) error {
	entries, err := os.ReadDir(s.cfg.storeRoot)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return os.MkdirAll(s.cfg.storeRoot, 0o755)
		}
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || !tenantNameRE.MatchString(e.Name()) {
			continue
		}
		name := e.Name()
		dir := filepath.Join(s.cfg.storeRoot, name)
		cfg := readTenantConfig(dir, tenantConfig{K: s.cfg.k, Threshold: s.cfg.threshold, Seed: s.cfg.seed})
		rank, err := cfg.rankFunc()
		if err != nil {
			logf("recover %s: %v (skipped)", name, err)
			continue
		}
		if cfg.Shards > 1 {
			// Sharded layout: per-shard journals plus the placement
			// directory, recovered and cross-checked by the shard package.
			clu, err := shard.Open(shard.Config{
				Shards: cfg.Shards, K: cfg.K, Threshold: cfg.Threshold, Rank: rank,
				Backend: s.cfg.storeBackend, Path: dir, StoreOpts: s.storeOptions(),
			})
			if err != nil {
				logf("recover %s: %v (skipped)", name, err)
				continue
			}
			t := &tenant{name: name, clu: clu, cluDurable: true, cfg: cfg, created: time.Now()}
			t.coal.inflight = make(map[coalKey]*coalCall)
			s.mu.Lock()
			s.tenants[name] = t
			s.mu.Unlock()
			logf("recovered %s at version %d (%d x-tuples, k=%d threshold=%g, %d shards)",
				name, clu.Version(), clu.NumGroups(), cfg.K, cfg.Threshold, cfg.Shards)
			continue
		}
		backend, err := store.OpenBackend(s.cfg.storeBackend, dir)
		if err != nil {
			logf("recover %s: %v (skipped)", name, err)
			continue
		}
		sdb, err := store.Open(backend, rank, s.storeOptions()...)
		if err != nil {
			backend.Close()
			logf("recover %s: %v (skipped)", name, err)
			continue
		}
		t, err := s.newTenant(name, sdb.DB(), sdb, nil, cfg)
		if err != nil {
			sdb.Close()
			logf("recover %s: %v (skipped)", name, err)
			continue
		}
		s.mu.Lock()
		s.tenants[name] = t
		s.mu.Unlock()
		logf("recovered %s at version %d (%d x-tuples, k=%d threshold=%g)",
			name, sdb.DB().Version(), sdb.DB().NumGroups(), cfg.K, cfg.Threshold)
	}
	return nil
}

// recoverFollowers is the follower-mode startup path: it opens every
// database under the store root read-only, syncs each replica to the
// journal tail, and starts the tailing loops. Unlike recoverTenants it
// creates nothing and repairs nothing — a follower serves exactly what the
// leader persisted, so an empty root is an error, not an invitation.
func (s *server) recoverFollowers(logf func(format string, args ...any)) error {
	entries, err := os.ReadDir(s.cfg.storeRoot)
	if err != nil {
		return fmt.Errorf("follower: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !tenantNameRE.MatchString(e.Name()) {
			continue
		}
		s.followTenant(e.Name(), logf)
	}
	if len(s.tenantList()) == 0 {
		return fmt.Errorf("follower: %s holds no databases to follow (is it a leader's -store root?)", s.cfg.storeRoot)
	}
	return nil
}

// followTenant attaches one of the leader's databases as a read-only
// replica. Failures are logged and skipped (the directory may be a
// half-created tenant the leader is still writing; the rescan loop will
// retry it).
func (s *server) followTenant(name string, logf func(format string, args ...any)) {
	dir := filepath.Join(s.cfg.storeRoot, name)
	cfg := readTenantConfig(dir, tenantConfig{K: s.cfg.k, Threshold: s.cfg.threshold, Seed: s.cfg.seed})
	if cfg.Shards > 1 {
		logf("follow %s: sharded databases cannot be followed yet (skipped)", name)
		return
	}
	rank, err := cfg.rankFunc()
	if err != nil {
		logf("follow %s: %v (skipped)", name, err)
		return
	}
	backend, err := store.OpenBackendReadOnly(s.cfg.storeBackend, dir)
	if err != nil {
		logf("follow %s: %v (skipped)", name, err)
		return
	}
	rep, err := replica.Open(backend, rank, replica.WithPollInterval(s.cfg.replicaPoll))
	if err != nil {
		backend.Close()
		logf("follow %s: %v (skipped)", name, err)
		return
	}
	t, err := s.newTenant(name, rep.DB(), nil, rep, cfg)
	if err != nil {
		rep.Close()
		logf("follow %s: %v (skipped)", name, err)
		return
	}
	rep.Start()
	s.mu.Lock()
	if _, ok := s.tenants[name]; ok || s.draining.Load() {
		// Raced with another attach, or the daemon is shutting down: this
		// replica has no owner to close it later, so close it now.
		s.mu.Unlock()
		rep.Close()
		return
	}
	s.tenants[name] = t
	s.mu.Unlock()
	logf("following %s at version %d (%d x-tuples, k=%d threshold=%g)",
		name, rep.Version(), rep.DB().NumGroups(), cfg.K, cfg.Threshold)
}

// rescanFollowers picks up databases the leader created after this
// follower started — the dynamic half of follower mode. Directories
// already being followed are skipped; new ones attach exactly like the
// startup scan.
func (s *server) rescanFollowers(logf func(format string, args ...any)) {
	entries, err := os.ReadDir(s.cfg.storeRoot)
	if err != nil {
		logf("follower rescan: %v", err)
		return
	}
	for _, e := range entries {
		if !e.IsDir() || !tenantNameRE.MatchString(e.Name()) {
			continue
		}
		name := e.Name()
		s.mu.RLock()
		_, known := s.tenants[name]
		s.mu.RUnlock()
		if known {
			continue
		}
		s.followTenant(name, logf)
	}
}

// followerRescanLoop runs rescanFollowers on a ticker until ctx is
// cancelled (daemon shutdown).
func (s *server) followerRescanLoop(ctx context.Context, every time.Duration, logf func(format string, args ...any)) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.rescanFollowers(logf)
		}
	}
}

// deleteTenant unregisters a database and, when durable, deletes its
// persisted state. The default database is refused: the legacy
// single-database routes alias to it. So is a database with followers
// attached (file backend; flock-based, so best-effort and same-machine
// only): unlinking a journal a replica is tailing would strand it. The
// name stays reserved (via s.creating) until the directory removal
// finishes, so a concurrent create of the same name cannot write a fresh
// journal into a directory RemoveAll is still unlinking.
func (s *server) deleteTenant(name string) error {
	if name == defaultDB {
		return fmt.Errorf("the %q database cannot be deleted (legacy routes alias to it)", defaultDB)
	}
	// The follower probe stats and flocks journal files, so it must not
	// run under s.mu (lockscope): peek under RLock, probe unlocked. A
	// follower attaching in the gap before the write lock below loses the
	// same race it always could — the probe is best-effort by design.
	s.mu.RLock()
	peek, attached := s.tenants[name]
	s.mu.RUnlock()
	if attached && peek.sdb != nil && s.cfg.storeBackend == "file" && store.ReadersAttached(s.tenantPath(name)) {
		return fmt.Errorf("database %q has followers attached; detach them before deleting", name)
	}
	s.mu.Lock()
	t, ok := s.tenants[name]
	if ok {
		delete(s.tenants, name)
		s.creating[name] = true // reserve against concurrent re-creation
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", errTenantMissing, name)
	}
	defer func() {
		s.mu.Lock()
		delete(s.creating, name)
		s.mu.Unlock()
	}()
	if t.clu != nil {
		t.writeMu.Lock()
		defer t.writeMu.Unlock()
		_ = t.clu.Close()
		if t.cluDurable {
			s.dropShardStorage(name, t.cfg.Shards)
		}
		return nil
	}
	if t.sdb != nil {
		t.writeMu.Lock()
		defer t.writeMu.Unlock()
		// The journal is about to be unlinked, so a failed final
		// checkpoint inside Close is irrelevant — removal is the intent.
		_ = t.sdb.Close()
		if err := os.RemoveAll(filepath.Join(s.cfg.storeRoot, name)); err != nil {
			// The tenant is gone from serving but its directory survived;
			// it will resurrect on the next restart. Surface that.
			return fmt.Errorf("unregistered, but deleting its storage failed (it will be recovered on restart): %w", err)
		}
		if s.cfg.storeBackend == "mem" {
			s.dropTenantStorage(name)
		}
	}
	return nil
}

// closeStores flushes every durable tenant (final checkpoint + sync) and
// stops follower replicas — the graceful-drain counterpart of
// recoverTenants/recoverFollowers.
func (s *server) closeStores(logf func(format string, args ...any)) {
	s.draining.Store(true) // stop the follower rescan from attaching more
	for _, t := range s.tenantList() {
		if t.rep != nil {
			if err := t.rep.Close(); err != nil {
				logf("stop replica %s: %v", t.name, err)
			}
		}
		if t.clu != nil {
			t.writeMu.Lock()
			if err := t.clu.Close(); err != nil {
				logf("flush %s: %v", t.name, err)
			}
			t.writeMu.Unlock()
		}
		if t.sdb == nil {
			continue
		}
		t.writeMu.Lock()
		if err := t.sdb.Close(); err != nil {
			logf("flush %s: %v", t.name, err)
		}
		t.writeMu.Unlock()
	}
}

func (s *server) storeOptions() []store.Option {
	opts := []store.Option{store.WithCheckpointEvery(s.cfg.checkpointEvery)}
	if !s.cfg.fsync {
		opts = append(opts, store.WithNoFsync())
	}
	return opts
}

func writeTenantConfig(dir string, cfg tenantConfig) error {
	data, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, tenantConfigName), data, 0o644)
}

func readTenantConfig(dir string, fallback tenantConfig) tenantConfig {
	data, err := os.ReadFile(filepath.Join(dir, tenantConfigName))
	if err != nil {
		return fallback
	}
	cfg := fallback
	if json.Unmarshal(data, &cfg) != nil {
		return fallback
	}
	if cfg.K <= 0 {
		cfg.K = fallback.K
	}
	return cfg
}
