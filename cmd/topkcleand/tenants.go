package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/replica"
	"github.com/probdb/topkclean/internal/store"
)

// A tenant is one named database with everything serving it: the engine
// (queries, planning), the optional persistence handle (nil = ephemeral),
// the replica handle on follower daemons, the per-tenant query coalescer,
// and the write mutex that keeps WAL order equal to commit order across
// /mutate and /apply.
type tenant struct {
	name    string
	eng     *topkclean.Engine
	sdb     *store.DB        // nil when the daemon runs without -store
	rep     *replica.Replica // non-nil on follower daemons
	cfg     tenantConfig
	coal    coalescer
	applies atomic.Int64 // per-apply rng decorrelation counter
	writeMu sync.Mutex   // serializes journaled writes; queries never take it
	engMu   sync.Mutex   // follower only: guards the engine rebuild below
	engGen  uint64       // replica generation the current engine was built on
	created time.Time
}

// durable reports whether the tenant survives restarts (its own journal,
// or — on a follower — the leader's).
func (t *tenant) durable() bool { return t.sdb != nil || t.rep != nil }

// engine returns the engine to serve queries from. On a leader it is the
// tenant's engine, fixed for the tenant's lifetime. On a follower the
// replica's incremental tailing keeps the same database (and the engine's
// snapshot-keyed memoization stays warm across replicated commits), but a
// resync — the leader checkpointed past this follower — replaces the
// database wholesale; the engine is then rebuilt over the new one, keyed
// by the replica's generation. A rebuild failure keeps serving the
// previous engine (bounded staleness beats an outage) and retries on the
// next request.
func (t *tenant) engine() *topkclean.Engine {
	if t.rep == nil {
		return t.eng
	}
	t.engMu.Lock()
	defer t.engMu.Unlock()
	if gen := t.rep.Generation(); gen != t.engGen {
		eng, err := topkclean.New(t.rep.DB(),
			topkclean.WithK(t.cfg.K),
			topkclean.WithPTKThreshold(t.cfg.Threshold),
			topkclean.WithSeed(t.cfg.Seed))
		if err == nil {
			t.eng = eng
			t.engGen = gen
		}
	}
	return t.eng
}

// tenantConfig is the per-database serving configuration, persisted as
// tenant.json next to the journal so a restart recovers not just the data
// but the query shape (k, threshold) and the ranking function it was
// being served with. Rank names a function ("first" | "sum"; empty means
// "first") — it must match what the database was built with, and
// recovery verifies the persisted rank order against it.
type tenantConfig struct {
	K         int     `json:"k"`
	Threshold float64 `json:"threshold"`
	Seed      int64   `json:"seed"`
	Rank      string  `json:"rank,omitempty"`
}

// rankFunc resolves the persisted ranking-function name through the
// library's shared registry (the same names the CLI's -rank flags use).
func (c tenantConfig) rankFunc() (topkclean.RankFunc, error) {
	rank, err := topkclean.RankByName(c.Rank)
	if err != nil {
		return nil, fmt.Errorf("tenant.json: %w", err)
	}
	return rank, nil
}

const tenantConfigName = "tenant.json"

// defaultDB is the database the legacy single-database routes alias to.
const defaultDB = "default"

// tenantNameRE bounds database names to path-safe tokens: they become
// directory names under -store, so no separators, no leading dot.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

var (
	errTenantExists  = errors.New("database already exists")
	errTenantMissing = errors.New("no such database")
	errBadName       = errors.New("database names are 1-64 chars of [A-Za-z0-9_.-], not starting with a dot")
)

// tenant looks a tenant up by name.
func (s *server) tenant(name string) (*tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errTenantMissing, name)
	}
	return t, nil
}

// tenantList returns the tenants sorted by name.
func (s *server) tenantList() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// addTenant registers a freshly built database under name, persisting it
// first when the daemon has a store root. The database must be built; cfg
// zero-values fall back to the daemon defaults. The registry lock is held
// only to reserve the name and to install the finished tenant — the disk
// work (full-database wire encode + fsyncs) runs outside it, so creating
// a large database never stalls requests against existing tenants.
func (s *server) addTenant(name string, db *topkclean.Database, cfg tenantConfig) (*tenant, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, errBadName
	}
	if cfg.K <= 0 {
		cfg.K = s.cfg.k
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = s.cfg.threshold
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.cfg.seed
	}
	s.mu.Lock()
	if _, ok := s.tenants[name]; ok || s.creating[name] {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", errTenantExists, name)
	}
	s.creating[name] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.creating, name)
		s.mu.Unlock()
	}()

	var sdb *store.DB
	if s.cfg.storeRoot != "" {
		dir := s.tenantPath(name)
		backend, err := store.OpenBackend(s.cfg.storeBackend, dir)
		if err != nil {
			return nil, err
		}
		sdb, err = store.Create(backend, db, s.storeOptions()...)
		if err != nil {
			backend.Close()
			s.dropTenantStorage(name)
			return nil, err
		}
		// tenant.json lives next to the journal; only the file backend has
		// a directory to keep it in (mem tenants die with the process, so
		// there is nothing to recover a config for).
		if s.cfg.storeBackend == "file" {
			if err := writeTenantConfig(dir, cfg); err != nil {
				sdb.Close()
				s.dropTenantStorage(name) // leave no half-created store a retry would trip over
				return nil, err
			}
		}
	}
	t, err := s.newTenant(name, db, sdb, nil, cfg)
	if err != nil {
		if sdb != nil {
			sdb.Close()
			s.dropTenantStorage(name)
		}
		return nil, err
	}
	s.mu.Lock()
	s.tenants[name] = t
	s.mu.Unlock()
	return t, nil
}

// tenantPath is where a tenant's journal lives: a directory for the file
// backend, an opaque process-local key for mem.
func (s *server) tenantPath(name string) string {
	return filepath.Join(s.cfg.storeRoot, name)
}

// dropTenantStorage removes whatever the tenant's backend keeps at its
// path — the cleanup half of create failures and deletions.
func (s *server) dropTenantStorage(name string) {
	switch s.cfg.storeBackend {
	case "file":
		os.RemoveAll(s.tenantPath(name))
	case "mem":
		store.DropMem(s.tenantPath(name))
	}
}

// newTenant wires the engine and serving state for a database.
func (s *server) newTenant(name string, db *topkclean.Database, sdb *store.DB, rep *replica.Replica, cfg tenantConfig) (*tenant, error) {
	eng, err := topkclean.New(db,
		topkclean.WithK(cfg.K),
		topkclean.WithPTKThreshold(cfg.Threshold),
		topkclean.WithSeed(cfg.Seed))
	if err != nil {
		return nil, err
	}
	t := &tenant{name: name, eng: eng, sdb: sdb, rep: rep, cfg: cfg, created: time.Now()}
	t.coal.inflight = make(map[coalKey]*coalCall)
	return t, nil
}

// recoverTenants opens every database persisted under the store root —
// the startup path after a restart or a crash. Directories that do not
// hold a database (or fail to recover) are reported and skipped, so one
// corrupt tenant cannot take the whole daemon down.
func (s *server) recoverTenants(logf func(format string, args ...any)) error {
	entries, err := os.ReadDir(s.cfg.storeRoot)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return os.MkdirAll(s.cfg.storeRoot, 0o755)
		}
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || !tenantNameRE.MatchString(e.Name()) {
			continue
		}
		name := e.Name()
		dir := filepath.Join(s.cfg.storeRoot, name)
		cfg := readTenantConfig(dir, tenantConfig{K: s.cfg.k, Threshold: s.cfg.threshold, Seed: s.cfg.seed})
		rank, err := cfg.rankFunc()
		if err != nil {
			logf("recover %s: %v (skipped)", name, err)
			continue
		}
		backend, err := store.OpenBackend(s.cfg.storeBackend, dir)
		if err != nil {
			logf("recover %s: %v (skipped)", name, err)
			continue
		}
		sdb, err := store.Open(backend, rank, s.storeOptions()...)
		if err != nil {
			backend.Close()
			logf("recover %s: %v (skipped)", name, err)
			continue
		}
		t, err := s.newTenant(name, sdb.DB(), sdb, nil, cfg)
		if err != nil {
			sdb.Close()
			logf("recover %s: %v (skipped)", name, err)
			continue
		}
		s.mu.Lock()
		s.tenants[name] = t
		s.mu.Unlock()
		logf("recovered %s at version %d (%d x-tuples, k=%d threshold=%g)",
			name, sdb.DB().Version(), sdb.DB().NumGroups(), cfg.K, cfg.Threshold)
	}
	return nil
}

// recoverFollowers is the follower-mode startup path: it opens every
// database under the store root read-only, syncs each replica to the
// journal tail, and starts the tailing loops. Unlike recoverTenants it
// creates nothing and repairs nothing — a follower serves exactly what the
// leader persisted, so an empty root is an error, not an invitation.
func (s *server) recoverFollowers(logf func(format string, args ...any)) error {
	entries, err := os.ReadDir(s.cfg.storeRoot)
	if err != nil {
		return fmt.Errorf("follower: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !tenantNameRE.MatchString(e.Name()) {
			continue
		}
		name := e.Name()
		dir := filepath.Join(s.cfg.storeRoot, name)
		cfg := readTenantConfig(dir, tenantConfig{K: s.cfg.k, Threshold: s.cfg.threshold, Seed: s.cfg.seed})
		rank, err := cfg.rankFunc()
		if err != nil {
			logf("follow %s: %v (skipped)", name, err)
			continue
		}
		backend, err := store.OpenBackendReadOnly(s.cfg.storeBackend, dir)
		if err != nil {
			logf("follow %s: %v (skipped)", name, err)
			continue
		}
		rep, err := replica.Open(backend, rank, replica.WithPollInterval(s.cfg.replicaPoll))
		if err != nil {
			backend.Close()
			logf("follow %s: %v (skipped)", name, err)
			continue
		}
		t, err := s.newTenant(name, rep.DB(), nil, rep, cfg)
		if err != nil {
			rep.Close()
			logf("follow %s: %v (skipped)", name, err)
			continue
		}
		rep.Start()
		s.mu.Lock()
		s.tenants[name] = t
		s.mu.Unlock()
		logf("following %s at version %d (%d x-tuples, k=%d threshold=%g)",
			name, rep.Version(), rep.DB().NumGroups(), cfg.K, cfg.Threshold)
	}
	if len(s.tenantList()) == 0 {
		return fmt.Errorf("follower: %s holds no databases to follow (is it a leader's -store root?)", s.cfg.storeRoot)
	}
	return nil
}

// deleteTenant unregisters a database and, when durable, deletes its
// persisted state. The default database is refused: the legacy
// single-database routes alias to it. So is a database with followers
// attached (file backend; flock-based, so best-effort and same-machine
// only): unlinking a journal a replica is tailing would strand it. The
// name stays reserved (via s.creating) until the directory removal
// finishes, so a concurrent create of the same name cannot write a fresh
// journal into a directory RemoveAll is still unlinking.
func (s *server) deleteTenant(name string) error {
	if name == defaultDB {
		return fmt.Errorf("the %q database cannot be deleted (legacy routes alias to it)", defaultDB)
	}
	// The follower probe stats and flocks journal files, so it must not
	// run under s.mu (lockscope): peek under RLock, probe unlocked. A
	// follower attaching in the gap before the write lock below loses the
	// same race it always could — the probe is best-effort by design.
	s.mu.RLock()
	peek, attached := s.tenants[name]
	s.mu.RUnlock()
	if attached && peek.sdb != nil && s.cfg.storeBackend == "file" && store.ReadersAttached(s.tenantPath(name)) {
		return fmt.Errorf("database %q has followers attached; detach them before deleting", name)
	}
	s.mu.Lock()
	t, ok := s.tenants[name]
	if ok {
		delete(s.tenants, name)
		s.creating[name] = true // reserve against concurrent re-creation
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", errTenantMissing, name)
	}
	defer func() {
		s.mu.Lock()
		delete(s.creating, name)
		s.mu.Unlock()
	}()
	if t.sdb != nil {
		t.writeMu.Lock()
		defer t.writeMu.Unlock()
		// The journal is about to be unlinked, so a failed final
		// checkpoint inside Close is irrelevant — removal is the intent.
		_ = t.sdb.Close()
		if err := os.RemoveAll(filepath.Join(s.cfg.storeRoot, name)); err != nil {
			// The tenant is gone from serving but its directory survived;
			// it will resurrect on the next restart. Surface that.
			return fmt.Errorf("unregistered, but deleting its storage failed (it will be recovered on restart): %w", err)
		}
		if s.cfg.storeBackend == "mem" {
			s.dropTenantStorage(name)
		}
	}
	return nil
}

// closeStores flushes every durable tenant (final checkpoint + sync) and
// stops follower replicas — the graceful-drain counterpart of
// recoverTenants/recoverFollowers.
func (s *server) closeStores(logf func(format string, args ...any)) {
	for _, t := range s.tenantList() {
		if t.rep != nil {
			if err := t.rep.Close(); err != nil {
				logf("stop replica %s: %v", t.name, err)
			}
		}
		if t.sdb == nil {
			continue
		}
		t.writeMu.Lock()
		if err := t.sdb.Close(); err != nil {
			logf("flush %s: %v", t.name, err)
		}
		t.writeMu.Unlock()
	}
}

func (s *server) storeOptions() []store.Option {
	opts := []store.Option{store.WithCheckpointEvery(s.cfg.checkpointEvery)}
	if !s.cfg.fsync {
		opts = append(opts, store.WithNoFsync())
	}
	return opts
}

func writeTenantConfig(dir string, cfg tenantConfig) error {
	data, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, tenantConfigName), data, 0o644)
}

func readTenantConfig(dir string, fallback tenantConfig) tenantConfig {
	data, err := os.ReadFile(filepath.Join(dir, tenantConfigName))
	if err != nil {
		return fallback
	}
	cfg := fallback
	if json.Unmarshal(data, &cfg) != nil {
		return fallback
	}
	if cfg.K <= 0 {
		cfg.K = fallback.K
	}
	return cfg
}
