package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/shard"
	"github.com/probdb/topkclean/internal/store"
	"github.com/probdb/topkclean/internal/uncertain"
)

// server is the HTTP serving layer over a registry of named databases
// (tenants), each with its own engine and — when the daemon runs with
// -store — its own journal. Queries read through pinned snapshot epochs
// and run lock-free and fully concurrently with the mutation endpoints,
// which serialize per tenant (so the WAL order always equals the commit
// order) and publish one epoch per request. The legacy single-database
// routes (/topk, /mutate, ...) alias to the "default" database. See
// SERVING.md for the API reference and the consistency guarantees, and
// PERSISTENCE.md for the durability contract.
type server struct {
	cfg      serverConfig
	mu       sync.RWMutex
	tenants  map[string]*tenant
	creating map[string]bool // names reserved by in-flight creations
	draining atomic.Bool     // set at shutdown: the follower rescan must not attach more
	mux      *http.ServeMux
	started  time.Time
}

// serverConfig carries the daemon flags the serving layer needs: defaults
// for new tenants, the persistence policy, and the serving role.
type serverConfig struct {
	k               int
	threshold       float64
	seed            int64
	synthetic       int    // default size for /dbs creations without data
	storeRoot       string // "" = everything is ephemeral
	storeBackend    string // registered store driver ("file" | "mem")
	fsync           bool
	checkpointEvery int
	follower        bool          // serve replicated epochs; refuse writes
	replicaPoll     time.Duration // follower journal poll interval
	shards          int           // default shard count for new tenants (1 = unsharded)
}

func newServer(cfg serverConfig) *server {
	if cfg.storeBackend == "" {
		cfg.storeBackend = "file"
	}
	s := &server{cfg: cfg, tenants: make(map[string]*tenant), creating: make(map[string]bool), started: time.Now()}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /dbs", s.handleListDBs)
	s.mux.HandleFunc("POST /dbs", s.handleCreateDB)
	s.mux.HandleFunc("DELETE /dbs/{name}", s.handleDeleteDB)
	// Per-database routes, plus the legacy single-database aliases that
	// serve the default database.
	for _, route := range []struct {
		method, path string
		write        bool // mutates the database: leader-only
		h            func(http.ResponseWriter, *http.Request, *tenant)
	}{
		{"GET", "stats", false, s.handleStats},
		{"GET", "topk", false, s.handleTopK},
		{"GET", "quality", false, s.handleQuality},
		{"POST", "plan", false, s.handlePlan}, // planning only reads; executing the plan is /apply
		{"POST", "apply", true, s.handleApply},
		{"POST", "mutate", true, s.handleMutate},
	} {
		route := route
		h := route.h
		if route.write {
			h = s.leaderOnly(route.h)
		}
		s.mux.HandleFunc(route.method+" /dbs/{name}/"+route.path, func(w http.ResponseWriter, r *http.Request) {
			t, err := s.tenant(r.PathValue("name"))
			if err != nil {
				writeErr(w, http.StatusNotFound, err)
				return
			}
			h(w, r, t)
		})
		s.mux.HandleFunc(route.method+" /"+route.path, func(w http.ResponseWriter, r *http.Request) {
			t, err := s.tenant(defaultDB)
			if err != nil {
				writeErr(w, http.StatusNotFound, err)
				return
			}
			h(w, r, t)
		})
	}
	return s
}

// leaderOnly guards a write route: on a follower it answers 403 with the
// role error body instead of invoking the handler. Followers replicate the
// leader's journal; accepting a local write would fork the history.
func (s *server) leaderOnly(h func(http.ResponseWriter, *http.Request, *tenant)) func(http.ResponseWriter, *http.Request, *tenant) {
	if !s.cfg.follower {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request, _ *tenant) {
		s.writeRoleErr(w)
	}
}

// writeRoleErr is the follower's answer to any write: the body names this
// daemon's role and the role the request needs, so clients (and proxies)
// can re-route to the leader.
func (s *server) writeRoleErr(w http.ResponseWriter) {
	writeJSON(w, http.StatusForbidden, map[string]string{
		"error":         "this daemon is a read-only follower; send writes to the leader",
		"role":          "follower",
		"required_role": "leader",
	})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- request coalescing ----------------------------------------------------

// coalKey identifies a /topk computation within one tenant: answers are
// fully determined by the (version, k, threshold) triple, so concurrent
// identical requests share one computation and one JSON encoding. k is
// fixed per tenant's engine, so it does not appear in the key.
type coalKey struct {
	version   uint64
	threshold float64
}

type coalCall struct {
	done chan struct{}
	body []byte
	err  error
}

// coalescer deduplicates in-flight identical queries: the first request
// for a key becomes the leader and computes; followers arriving before the
// leader finishes wait on the same call and reuse its bytes. Entries are
// removed on completion, so results are shared only between overlapping
// requests — the engine's memoization handles repeat requests over time.
type coalescer struct {
	mu        sync.Mutex
	inflight  map[coalKey]*coalCall
	coalesced atomic.Int64 // follower count, exported via /stats
}

func (c *coalescer) do(key coalKey, fn func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-call.done
		return call.body, call.err
	}
	call := &coalCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.body, call.err = fn()
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.done)
	return call.body, call.err
}

// ---- wire types ------------------------------------------------------------

type answerJSON struct {
	H     int     `json:"h,omitempty"` // U-kRanks only: the rank this entry answers
	ID    string  `json:"id"`
	Score float64 `json:"score"`
	Rank  int     `json:"rank"` // rank-order position at answer time (0 = best)
	Prob  float64 `json:"prob"`
}

type topkResponse struct {
	Version    uint64       `json:"version"`
	K          int          `json:"k"`
	Threshold  float64      `json:"threshold"`
	Quality    float64      `json:"quality"`
	UKRanks    []answerJSON `json:"ukranks"`
	PTK        []answerJSON `json:"ptk"`
	GlobalTopK []answerJSON `json:"globaltopk"`
}

type qualityResponse struct {
	Version uint64  `json:"version"`
	K       int     `json:"k"`
	Quality float64 `json:"quality"`
}

type specJSON struct {
	Cost    int       `json:"cost,omitempty"`    // uniform cost (default 1)
	SCProb  float64   `json:"scprob,omitempty"`  // uniform sc-probability (default 1)
	Costs   []int     `json:"costs,omitempty"`   // per-x-tuple costs (override Cost)
	SCProbs []float64 `json:"scprobs,omitempty"` // per-x-tuple sc-probabilities (override SCProb)
}

type planRequest struct {
	Planner string   `json:"planner"` // dp | greedy | randp | randu | any registered
	Budget  int      `json:"budget"`
	Spec    specJSON `json:"spec"`
}

type planResponse struct {
	Version             uint64         `json:"version"`
	Planner             string         `json:"planner"`
	Budget              int            `json:"budget"`
	Plan                map[string]int `json:"plan"` // x-tuple index -> operations
	Ops                 int            `json:"ops"`
	Cost                int            `json:"cost"`
	ExpectedImprovement float64        `json:"expected_improvement"`
}

type applyRequest struct {
	Planner string         `json:"planner"`
	Budget  int            `json:"budget"`
	Spec    specJSON       `json:"spec"`
	Plan    map[string]int `json:"plan,omitempty"`    // explicit plan; omits the planner
	Version uint64         `json:"version,omitempty"` // optimistic concurrency: must match if nonzero
	Seed    int64          `json:"seed,omitempty"`    // agent rng; default: per-request stream
}

type applyResponse struct {
	Version     uint64         `json:"version"` // version after the apply
	OpsUsed     int            `json:"ops_used"`
	CostUsed    int            `json:"cost_used"`
	Resolved    map[string]int `json:"resolved"` // x-tuple index -> chosen alternative
	OldQuality  float64        `json:"old_quality"`
	NewQuality  float64        `json:"new_quality"`
	Improvement float64        `json:"improvement"`
}

type tupleJSON struct {
	ID    string    `json:"id"`
	Attrs []float64 `json:"attrs"`
	Prob  float64   `json:"prob"`
}

type mutateOp struct {
	Op     string      `json:"op"` // insert | insert_absent | delete | reweight | collapse
	Name   string      `json:"name,omitempty"`
	Tuples []tupleJSON `json:"tuples,omitempty"`
	Group  int         `json:"group,omitempty"`
	Probs  []float64   `json:"probs,omitempty"`
	Choice int         `json:"choice,omitempty"`
}

type mutateRequest struct {
	Ops []mutateOp `json:"ops"`
}

type mutateResponse struct {
	Version    uint64 `json:"version"`
	OpsApplied int    `json:"ops_applied"` // == len(ops) on success; see the error shape for partial commits
	XTuples    int    `json:"xtuples"`
	Tuples     int    `json:"tuples"`
}

type statsResponse struct {
	Name          string            `json:"name"`
	Role          string            `json:"role"` // leader | follower
	Version       uint64            `json:"version"`
	XTuples       int               `json:"xtuples"`
	Tuples        int               `json:"tuples"`
	RealTuples    int               `json:"real_tuples"`
	K             int               `json:"k"`
	Threshold     float64           `json:"threshold"`
	Durable       bool              `json:"durable"`
	WALRecords    int               `json:"wal_records_since_checkpoint"`
	CheckpointVer uint64            `json:"checkpoint_version"`
	Coalesced     int64             `json:"coalesced_queries"`
	DBs           int               `json:"dbs"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Replication   *replicationJSON  `json:"replication,omitempty"` // followers only
	Shards        []shard.ShardStat `json:"shards,omitempty"`      // sharded tenants: per-shard version/size/scan/lag
}

// replicationJSON is the follower's lag block in /stats.
type replicationJSON struct {
	AppliedVersion uint64 `json:"applied_version"`
	VersionsBehind uint64 `json:"versions_behind"`
	BytesBehind    int64  `json:"bytes_behind"`
	Ready          bool   `json:"ready"`
	Resyncs        uint64 `json:"resyncs"`
	LastError      string `json:"last_error,omitempty"`
}

type dbInfoJSON struct {
	Name      string  `json:"name"`
	Version   uint64  `json:"version"`
	XTuples   int     `json:"xtuples"`
	Tuples    int     `json:"tuples"`
	K         int     `json:"k"`
	Threshold float64 `json:"threshold"`
	Shards    int     `json:"shards,omitempty"` // > 1: range-sharded
	Durable   bool    `json:"durable"`
}

type createRequest struct {
	Name      string         `json:"name"`
	K         int            `json:"k,omitempty"`         // default: daemon -k
	Threshold float64        `json:"threshold,omitempty"` // default: daemon -threshold
	Seed      int64          `json:"seed,omitempty"`      // engine seed; default: daemon -seed
	Synthetic int            `json:"synthetic,omitempty"` // x-tuples to generate when no xtuples given
	GenSeed   int64          `json:"gen_seed,omitempty"`  // generator seed (default: daemon -seed)
	Shards    int            `json:"shards,omitempty"`    // > 1: range-sharded serving (default: daemon -shards)
	XTuples   []createXTuple `json:"xtuples,omitempty"`   // inline dataset (wins over synthetic)
}

type createXTuple struct {
	Name   string      `json:"name"`
	Absent bool        `json:"absent,omitempty"`
	Tuples []tupleJSON `json:"tuples,omitempty"`
}

// ---- handlers --------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.follower {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "leader"})
		return
	}
	// A follower is healthy once every replica has caught up to its
	// journal tail at least once — before that, answers would reflect an
	// arbitrarily old prefix of the leader's history.
	ready := true
	for _, t := range s.tenantList() {
		if t.rep != nil && !t.rep.Ready() {
			ready = false
			break
		}
	}
	status, code := "ok", http.StatusOK
	if !ready {
		status, code = "starting", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status, "role": "follower", "ready": ready})
}

func (t *tenant) info() dbInfoJSON {
	if t.clu != nil {
		return dbInfoJSON{
			Name:      t.name,
			Version:   t.clu.Version(),
			XTuples:   t.clu.NumGroups(),
			Tuples:    t.clu.NumTuples(),
			K:         t.clu.K(),
			Threshold: t.clu.Threshold(),
			Shards:    t.clu.Shards(),
			Durable:   t.durable(),
		}
	}
	eng := t.engine()
	snap := eng.DB().Snapshot()
	return dbInfoJSON{
		Name:      t.name,
		Version:   snap.Version(),
		XTuples:   snap.NumGroups(),
		Tuples:    snap.NumTuples(),
		K:         eng.K(),
		Threshold: eng.Threshold(),
		Durable:   t.durable(),
	}
}

func (s *server) handleListDBs(w http.ResponseWriter, r *http.Request) {
	ts := s.tenantList()
	infos := make([]dbInfoJSON, len(ts))
	for i, t := range ts {
		infos[i] = t.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"dbs": infos})
}

func (s *server) handleCreateDB(w http.ResponseWriter, r *http.Request) {
	if s.cfg.follower {
		s.writeRoleErr(w)
		return
	}
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !tenantNameRE.MatchString(req.Name) {
		writeErr(w, http.StatusBadRequest, errBadName)
		return
	}
	db, err := s.buildDatabase(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t, err := s.addTenant(req.Name, db, tenantConfig{K: req.K, Threshold: req.Threshold, Seed: req.Seed, Shards: req.Shards})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errTenantExists) {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, t.info())
}

// buildDatabase materializes a /dbs creation request: an inline dataset
// when given, the synthetic workload otherwise.
func (s *server) buildDatabase(req createRequest) (*topkclean.Database, error) {
	if len(req.XTuples) == 0 {
		size := req.Synthetic
		if size <= 0 {
			size = s.cfg.synthetic
		}
		seed := req.GenSeed
		if seed == 0 {
			seed = s.cfg.seed
		}
		return newSynthetic(size, seed)
	}
	db := topkclean.NewDatabase()
	for _, jx := range req.XTuples {
		if jx.Absent || len(jx.Tuples) == 0 {
			if err := db.AddAbsentXTuple(jx.Name); err != nil {
				return nil, err
			}
			continue
		}
		ts := make([]topkclean.Tuple, len(jx.Tuples))
		for i, jt := range jx.Tuples {
			ts[i] = topkclean.Tuple{ID: jt.ID, Attrs: jt.Attrs, Prob: jt.Prob}
		}
		if err := db.AddXTuple(jx.Name, ts...); err != nil {
			return nil, err
		}
	}
	if err := db.Build(topkclean.ByFirstAttr); err != nil {
		return nil, err
	}
	return db, nil
}

func (s *server) handleDeleteDB(w http.ResponseWriter, r *http.Request) {
	if s.cfg.follower {
		s.writeRoleErr(w)
		return
	}
	name := r.PathValue("name")
	if err := s.deleteTenant(name); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errTenantMissing) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request, t *tenant) {
	role := "leader"
	if s.cfg.follower {
		role = "follower"
	}
	var resp statsResponse
	if t.clu != nil {
		resp = statsResponse{
			Name:       t.name,
			Role:       role,
			Version:    t.clu.Version(),
			XTuples:    t.clu.NumGroups(),
			Tuples:     t.clu.NumTuples(),
			RealTuples: t.clu.NumRealTuples(),
			K:          t.clu.K(),
			Threshold:  t.clu.Threshold(),
			Shards:     t.clu.Stats(),
		}
	} else {
		eng := t.engine()
		snap := eng.DB().Snapshot()
		resp = statsResponse{
			Name:       t.name,
			Role:       role,
			Version:    snap.Version(),
			XTuples:    snap.NumGroups(),
			Tuples:     snap.NumTuples(),
			RealTuples: snap.NumRealTuples(),
			K:          eng.K(),
			Threshold:  eng.Threshold(),
		}
	}
	resp.Durable = t.durable()
	resp.Coalesced = t.coal.coalesced.Load()
	resp.UptimeSeconds = time.Since(s.started).Seconds()
	if t.sdb != nil {
		resp.WALRecords, resp.CheckpointVer = t.sdb.SinceCheckpoint()
	}
	if t.rep != nil {
		lag := t.rep.Lag()
		rj := &replicationJSON{
			AppliedVersion: t.rep.Version(),
			VersionsBehind: lag.Versions,
			BytesBehind:    lag.Bytes,
			Ready:          t.rep.Ready(),
			Resyncs:        t.rep.Resyncs(),
		}
		if err := t.rep.Err(); err != nil {
			rj.LastError = err.Error()
		}
		resp.Replication = rj
	}
	s.mu.RLock()
	resp.DBs = len(s.tenants)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request, t *tenant) {
	threshold := t.threshold()
	if q := r.URL.Query().Get("threshold"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		// Reject non-finite values outright: beyond being meaningless as
		// probability thresholds, a NaN map key would make the coalescer
		// entry unmatchable (NaN != NaN) and leak it forever.
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("threshold must be a finite number"))
			return
		}
		threshold = v
	}
	// Coalesce on the version visible at arrival: overlapping identical
	// requests share one engine call and one JSON encoding. If a commit
	// lands between keying and answering, the shared answer is simply the
	// newer version's (reported in its body) — still one consistent epoch.
	key := coalKey{version: t.version(), threshold: threshold}
	body, err := t.coal.do(key, func() ([]byte, error) {
		// Compute detached from the leader's request context: followers
		// with live connections share this result, and the leader's client
		// hanging up must not fail them all with its cancellation.
		res, err := t.answersThreshold(context.WithoutCancel(r.Context()), threshold)
		if err != nil {
			return nil, err
		}
		resp := topkResponse{
			Version:    res.Version,
			K:          res.K,
			Threshold:  res.Threshold,
			Quality:    res.Quality,
			UKRanks:    make([]answerJSON, 0, len(res.UKRanks)),
			PTK:        make([]answerJSON, 0, len(res.PTK)),
			GlobalTopK: make([]answerJSON, 0, len(res.GlobalTopK)),
		}
		for _, a := range res.UKRanks {
			resp.UKRanks = append(resp.UKRanks, answerJSON{H: a.H, ID: a.ID, Score: a.Score, Rank: a.Rank, Prob: a.Prob})
		}
		for _, a := range res.PTK {
			resp.PTK = append(resp.PTK, answerJSON{ID: a.ID, Score: a.Score, Rank: a.Rank, Prob: a.Prob})
		}
		for _, a := range res.GlobalTopK {
			resp.GlobalTopK = append(resp.GlobalTopK, answerJSON{ID: a.ID, Score: a.Score, Rank: a.Rank, Prob: a.Prob})
		}
		return json.Marshal(resp)
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (s *server) handleQuality(w http.ResponseWriter, r *http.Request, t *tenant) {
	k := t.k()
	if q := r.URL.Query().Get("k"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("k must be a positive integer"))
			return
		}
		k = v
	}
	quality, version, err := t.qualityAtVersion(r.Context(), k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, qualityResponse{Version: version, K: k, Quality: quality})
}

// buildSpec materializes a wire spec for m x-tuples: per-x-tuple arrays
// win over the uniform fields; the defaults (cost 1, sc-probability 1)
// model free-choice certain probes.
func buildSpec(m int, sj specJSON) (topkclean.CleaningSpec, error) {
	cost, scp := sj.Cost, sj.SCProb
	if cost == 0 {
		cost = 1
	}
	if scp == 0 {
		scp = 1
	}
	spec := topkclean.UniformCleaningSpec(m, cost, scp)
	if sj.Costs != nil {
		if len(sj.Costs) != m {
			return spec, fmt.Errorf("costs: got %d entries for %d x-tuples", len(sj.Costs), m)
		}
		spec.Costs = sj.Costs
	}
	if sj.SCProbs != nil {
		if len(sj.SCProbs) != m {
			return spec, fmt.Errorf("scprobs: got %d entries for %d x-tuples", len(sj.SCProbs), m)
		}
		spec.SCProbs = sj.SCProbs
	}
	return spec, nil
}

func planToWire(p topkclean.CleaningPlan) map[string]int {
	out := make(map[string]int, len(p))
	for l, ops := range p {
		if ops > 0 {
			out[strconv.Itoa(l)] = ops
		}
	}
	return out
}

func wireToPlan(m map[string]int) (topkclean.CleaningPlan, error) {
	p := topkclean.CleaningPlan{}
	for l, ops := range m {
		idx, err := strconv.Atoi(l)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("plan key %q is not an x-tuple index", l)
		}
		if ops > 0 {
			p[idx] = ops
		}
	}
	return p, nil
}

// errShardedCleaning: the budgeted-cleaning planners evaluate candidate
// collapses against one engine's cleaning context; the sharded layer does
// not thread that yet.
var errShardedCleaning = errors.New("budgeted cleaning is not supported on sharded databases yet; create the database with shards=1")

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request, t *tenant) {
	if t.clu != nil {
		writeErr(w, http.StatusBadRequest, errShardedCleaning)
		return
	}
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Planner == "" {
		req.Planner = "greedy"
	}
	eng := t.engine()
	spec, err := buildSpec(eng.DB().Snapshot().NumGroups(), req.Spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	plan, cctx, err := eng.PlanCleaning(r.Context(), req.Planner, spec, req.Budget)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, planResponse{
		Version:             cctx.Version,
		Planner:             req.Planner,
		Budget:              req.Budget,
		Plan:                planToWire(plan),
		Ops:                 plan.Ops(),
		Cost:                plan.TotalCost(spec),
		ExpectedImprovement: topkclean.ExpectedImprovement(cctx, plan),
	})
}

func (s *server) handleApply(w http.ResponseWriter, r *http.Request, t *tenant) {
	if t.clu != nil {
		writeErr(w, http.StatusBadRequest, errShardedCleaning)
		return
	}
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Planner == "" {
		req.Planner = "greedy"
	}
	spec, err := buildSpec(t.eng.DB().Snapshot().NumGroups(), req.Spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var plan topkclean.CleaningPlan
	var cctx *topkclean.CleaningContext
	if len(req.Plan) > 0 {
		if plan, err = wireToPlan(req.Plan); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		cctx, err = t.eng.CleaningContext(r.Context(), spec, req.Budget)
	} else {
		plan, cctx, err = t.eng.PlanCleaning(r.Context(), req.Planner, spec, req.Budget)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Version != 0 && cctx.Version != req.Version {
		writeErr(w, http.StatusConflict, fmt.Errorf("version %d requested, database at %d", req.Version, cctx.Version))
		return
	}
	// Each apply draws from its own stream: replaying one fixed stream
	// would correlate every request's simulated agent. An explicit seed
	// makes a request reproducible.
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.seed + 7919*t.applies.Add(1)
	}
	oldQuality := cctx.Eval.S
	// The write mutex covers only the commit + its journal record, so the
	// WAL stays in commit order without serializing the (possibly slow)
	// planning above against other mutations. A commit that raced in
	// between planning and here fails the staleness re-check inside
	// ApplyCleaning with the same 409 it would have before the lock.
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	out, err := t.eng.ApplyCleaning(r.Context(), cctx, plan, rand.New(rand.NewSource(seed)))
	if t.sdb != nil && out != nil {
		// The collapses are committed (even when err != nil: ApplyCleaning
		// returns the outcome alongside a failed re-evaluation); journal
		// them before answering anything, or the live database would be
		// ahead of the WAL and the store would poison itself on the next
		// write while the cleaning silently vanished on recovery.
		if jerr := t.sdb.JournalCleaning(out.Choices); jerr != nil {
			writeErr(w, http.StatusInternalServerError, jerr)
			return
		}
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, topkclean.ErrStaleCleaningContext) {
			status = http.StatusConflict // a concurrent mutation won the race
		}
		writeErr(w, status, err)
		return
	}
	resolved := make(map[string]int, len(out.Choices))
	for l, choice := range out.Choices {
		resolved[strconv.Itoa(l)] = choice
	}
	// The version this apply produced is determined, not re-read: the
	// context pinned cctx.Version, the stale check inside the batch
	// guarantees no commit interleaved, and the collapses (if any)
	// committed exactly one version on top. Re-reading the live version
	// here could mislabel a mutation that raced in after us.
	version := cctx.Version
	if len(out.Choices) > 0 {
		version++
	}
	writeJSON(w, http.StatusOK, applyResponse{
		Version:     version,
		OpsUsed:     out.OpsUsed,
		CostUsed:    out.CostUsed,
		Resolved:    resolved,
		OldQuality:  oldQuality,
		NewQuality:  out.NewQuality,
		Improvement: out.Improvement,
	})
}

// opSink is the mutation surface shared by *topkclean.Batch (ephemeral
// tenants) and *store.Batch (durable tenants, which journal each
// successful op), so one request decoder drives both.
type opSink interface {
	InsertXTuple(name string, tuples ...topkclean.Tuple) error
	InsertAbsentXTuple(name string) error
	DeleteXTuple(l int) error
	Reweight(l int, probs []float64) error
	Collapse(l, choice int) error
}

// applyReqOps applies a /mutate op list to a batch, returning how many ops
// succeeded (all of them unless an error stopped the list).
func applyReqOps(b opSink, ops []mutateOp) (applied int, err error) {
	for i, op := range ops {
		var err error
		switch op.Op {
		case "insert":
			ts := make([]topkclean.Tuple, len(op.Tuples))
			for j, tj := range op.Tuples {
				ts[j] = topkclean.Tuple{ID: tj.ID, Attrs: tj.Attrs, Prob: tj.Prob}
			}
			err = b.InsertXTuple(op.Name, ts...)
		case "insert_absent":
			err = b.InsertAbsentXTuple(op.Name)
		case "delete":
			err = b.DeleteXTuple(op.Group)
		case "reweight":
			err = b.Reweight(op.Group, op.Probs)
		case "collapse":
			err = b.Collapse(op.Group, op.Choice)
		default:
			err = fmt.Errorf("unknown op %q", op.Op)
		}
		if err != nil {
			return applied, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
		}
		applied++
	}
	return applied, nil
}

func (s *server) handleMutate(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("mutate: no ops"))
		return
	}
	// One batch per request: the whole op list commits as a single epoch,
	// so queries see none or all of it. There is no rollback across ops —
	// on error, ops before the failing one stay applied (and committed,
	// and journaled on durable tenants); the response reports the error
	// together with ops_applied and the resulting version, so clients can
	// tell a partial commit from nothing-applied. Mutating endpoints
	// serialize on the tenant's write mutex (queries never do), so the
	// sizes and versions read below cannot be another writer's.
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	var applied int
	var err error
	var base uint64
	var groups, tuples int
	if t.clu != nil {
		// Sharded tenants: the cluster's batch has the same
		// prefix-on-failure, one-epoch-per-request semantics (the shard
		// package's differential battery pins the parity, error texts
		// included), with the router splitting ops across shards.
		base = t.clu.Version()
		err = t.clu.Batch(func(b *shard.Batch) error {
			applied, err = applyReqOps(b, req.Ops)
			return err
		})
		groups, tuples = t.clu.NumGroups(), t.clu.NumTuples()
	} else {
		db := t.eng.DB()
		base = db.Version()
		if t.sdb != nil {
			err = t.sdb.Batch(func(b *store.Batch) error {
				applied, err = applyReqOps(b, req.Ops)
				return err
			})
		} else {
			err = db.Batch(func(b *topkclean.Batch) error {
				applied, err = applyReqOps(b, req.Ops)
				return err
			})
		}
		groups, tuples = db.NumGroups(), db.NumTuples()
	}
	version := base
	if applied > 0 {
		version++ // the batch committed exactly one epoch
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, uncertain.ErrFrozenSnapshot) || errors.Is(err, store.ErrPoisoned) || errors.Is(err, shard.ErrPoisoned) {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, map[string]any{
			"error":       err.Error(),
			"ops_applied": applied,
			"version":     version,
		})
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{
		Version:    version,
		OpsApplied: applied,
		XTuples:    groups,
		Tuples:     tuples,
	})
}
