package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/probdb/topkclean/internal/analysis"
)

// render runs the suite over the concur fixture (which seeds findings in
// several files plus allows, so ordering actually matters) and returns the
// text, allow-inventory, and JSON renderings.
func render(t *testing.T) (text, allows, jsonOut []byte) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "concur"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := analysis.DefaultConfig(root)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 || len(res.Allows) == 0 {
		t.Fatalf("fixture produced %d findings, %d allows; the determinism test needs both",
			len(res.Findings), len(res.Allows))
	}
	var tb, ab, jb bytes.Buffer
	writeText(&tb, root, res)
	writeAllows(&ab, root, res)
	if err := writeJSON(&jb, res); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), ab.Bytes(), jb.Bytes()
}

// TestOutputDeterministic asserts two full load-check-render runs produce
// identical bytes in every output mode: findings and allows are sorted by
// (file, line, col, check), never by map-iteration or discovery order.
func TestOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double fixture type-check is slow under -short")
	}
	text1, allows1, json1 := render(t)
	text2, allows2, json2 := render(t)
	if !bytes.Equal(text1, text2) {
		t.Errorf("text output differs between runs:\n--- run 1\n%s--- run 2\n%s", text1, text2)
	}
	if !bytes.Equal(allows1, allows2) {
		t.Errorf("allow inventory differs between runs:\n--- run 1\n%s--- run 2\n%s", allows1, allows2)
	}
	if !bytes.Equal(json1, json2) {
		t.Errorf("-json output differs between runs:\n--- run 1\n%s--- run 2\n%s", json1, json2)
	}
}
