// Command topkclean-lint runs the repo's invariant lint suite
// (internal/analysis): stdlib-only static analysis that loads and
// type-checks the whole module — tests included — and enforces the
// snapshot, lock, error, and determinism discipline the runtime
// guarantees rest on (frozenwrite, idxread, senterr, lockscope,
// ctxdiscipline, lockorder, unlockpath, maporder, walltime; see DESIGN.md
// "Enforced invariants").
//
// Usage:
//
//	topkclean-lint [./...]            # lint the module containing the cwd
//	topkclean-lint -checks senterr,lockorder ./...
//	topkclean-lint -json ./...        # machine-readable findings + allows
//	topkclean-lint -list              # print the checks and exit
//
// The tool always lints the whole module (the suite's invariants span
// packages); "./..." is accepted for familiarity. Exit status is 1 when
// findings remain after //lint:allow filtering, 2 on load/type errors.
// Every applied allow is printed with its mandatory reason, so
// suppressions stay visible. Output is deterministic: findings and allows
// are emitted sorted by (file, line, col, check) in both text and -json
// modes, so two runs over the same tree produce identical bytes — CI
// diffs the uploaded -json artifact across runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/probdb/topkclean/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr))
}

func run(stdout, stderr io.Writer) int {
	var (
		jsonOut    = flag.Bool("json", false, "emit findings and allows as JSON")
		checksFlag = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list       = flag.Bool("list", false, "list the checks and exit")
		dir        = flag.String("C", ".", "directory whose module to lint")
		quiet      = flag.Bool("q", false, "suppress the allow listing; print findings only")
	)
	flag.Parse()

	if *list {
		docs := analysis.CheckDocs()
		for _, n := range analysis.CheckNames() {
			fmt.Fprintf(stdout, "%-14s %s\n", n, docs[n])
		}
		return 0
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(stderr, "topkclean-lint: the suite always lints the whole module; pass ./... or nothing (got %q)\n", arg)
			return 2
		}
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "topkclean-lint: %v\n", err)
		return 2
	}
	cfg, err := analysis.DefaultConfig(root)
	if err != nil {
		fmt.Fprintf(stderr, "topkclean-lint: %v\n", err)
		return 2
	}
	if *checksFlag != "" {
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			if !analysis.KnownCheck(name) {
				fmt.Fprintf(stderr, "topkclean-lint: unknown check %q (known: %s)\n",
					name, strings.Join(analysis.CheckNames(), ", "))
				return 2
			}
			cfg.Checks = append(cfg.Checks, name)
		}
	}

	res, err := analysis.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "topkclean-lint: %v\n", err)
		return 2
	}

	if *jsonOut {
		if err := writeJSON(stdout, res); err != nil {
			fmt.Fprintf(stderr, "topkclean-lint: %v\n", err)
			return 2
		}
	} else {
		writeText(stdout, root, res)
		if !*quiet {
			writeAllows(stderr, root, res)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(stderr, "topkclean-lint: %d finding(s)\n", len(res.Findings))
		return 1
	}
	return 0
}

// writeJSON emits the result as indented JSON. Run returns findings and
// allows already sorted by (file, line, col, check), and encoding/json
// preserves slice order and emits struct fields in declaration order, so
// the bytes are identical run to run.
func writeJSON(w io.Writer, res *analysis.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// writeText emits the findings, one per line, in the result's (file,
// line, col, check) order with module-root-relative paths.
func writeText(w io.Writer, root string, res *analysis.Result) {
	for _, f := range res.Findings {
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", relPath(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Message)
	}
}

// writeAllows emits the allow inventory — every directive with its check
// and mandatory reason — in the result's order, so suppressions stay
// visible and the listing is byte-stable.
func writeAllows(w io.Writer, root string, res *analysis.Result) {
	for _, a := range res.Allows {
		fmt.Fprintf(w, "%s:%d: allowed [%s]: %s\n", relPath(root, a.Pos.Filename), a.Pos.Line, a.Check, a.Reason)
	}
}

// relPath renders a position path relative to the module root for
// readable, stable output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
