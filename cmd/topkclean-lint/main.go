// Command topkclean-lint runs the repo's invariant lint suite
// (internal/analysis): stdlib-only static analysis that loads and
// type-checks the whole module — tests included — and enforces the
// snapshot, lock, and error discipline the runtime guarantees rest on
// (frozenwrite, idxread, senterr, lockscope, ctxdiscipline; see DESIGN.md
// "Enforced invariants").
//
// Usage:
//
//	topkclean-lint [./...]            # lint the module containing the cwd
//	topkclean-lint -checks senterr,lockscope ./...
//	topkclean-lint -json ./...        # machine-readable findings + allows
//	topkclean-lint -list              # print the checks and exit
//
// The tool always lints the whole module (the suite's invariants span
// packages); "./..." is accepted for familiarity. Exit status is 1 when
// findings remain after //lint:allow filtering, 2 on load/type errors.
// Every applied allow is printed with its mandatory reason, so
// suppressions stay visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/probdb/topkclean/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut    = flag.Bool("json", false, "emit findings and allows as JSON")
		checksFlag = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list       = flag.Bool("list", false, "list the checks and exit")
		dir        = flag.String("C", ".", "directory whose module to lint")
		quiet      = flag.Bool("q", false, "suppress the allow listing; print findings only")
	)
	flag.Parse()

	if *list {
		docs := analysis.CheckDocs()
		names := analysis.CheckNames()
		for _, n := range names {
			fmt.Printf("%-14s %s\n", n, docs[n])
		}
		return 0
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "topkclean-lint: the suite always lints the whole module; pass ./... or nothing (got %q)\n", arg)
			return 2
		}
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkclean-lint: %v\n", err)
		return 2
	}
	cfg, err := analysis.DefaultConfig(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkclean-lint: %v\n", err)
		return 2
	}
	if *checksFlag != "" {
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			if !analysis.KnownCheck(name) {
				fmt.Fprintf(os.Stderr, "topkclean-lint: unknown check %q (known: %s)\n",
					name, strings.Join(analysis.CheckNames(), ", "))
				return 2
			}
			cfg.Checks = append(cfg.Checks, name)
		}
	}

	res, err := analysis.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topkclean-lint: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "topkclean-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range res.Findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", relPath(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Message)
		}
		if !*quiet {
			allows := append([]*analysis.Allow(nil), res.Allows...)
			sort.Slice(allows, func(i, j int) bool {
				if allows[i].Pos.Filename != allows[j].Pos.Filename {
					return allows[i].Pos.Filename < allows[j].Pos.Filename
				}
				return allows[i].Pos.Line < allows[j].Pos.Line
			})
			for _, a := range allows {
				fmt.Fprintf(os.Stderr, "%s:%d: allowed [%s]: %s\n", relPath(root, a.Pos.Filename), a.Pos.Line, a.Check, a.Reason)
			}
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "topkclean-lint: %d finding(s)\n", len(res.Findings))
		return 1
	}
	return 0
}

// relPath renders a position path relative to the module root for
// readable, stable output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
