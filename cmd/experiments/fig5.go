package main

import (
	"fmt"

	"github.com/probdb/topkclean/internal/exp"
	"github.com/probdb/topkclean/internal/quality"
	"github.com/probdb/topkclean/internal/topkq"
	"github.com/probdb/topkclean/internal/uncertain"
)

// evalPTKSharing runs PT-k plus quality with computation sharing: one PSR
// pass feeds both the query answer and the TP quality formula.
func evalPTKSharing(db *uncertain.Database, k int) error {
	info, err := topkq.TopKProbabilities(db, k)
	if err != nil {
		return err
	}
	_ = topkq.PTK(db, info, defaultThreshold)
	_, err = quality.TPFromInfo(db, info)
	return err
}

// evalPTKNoSharing runs PT-k and quality independently: the PSR pass is
// paid twice, as a system without Section IV-C's sharing would.
func evalPTKNoSharing(db *uncertain.Database, k int) error {
	info, err := topkq.TopKProbabilities(db, k)
	if err != nil {
		return err
	}
	_ = topkq.PTK(db, info, defaultThreshold)
	_, err = quality.TP(db, k) // recomputes rank probabilities internally
	return err
}

// runFig5a: total query+quality time with and without sharing, vs k.
// Paper shape: sharing cuts the total to ~52% at k=100 (the quality side's
// PSR pass dominates and is eliminated).
func runFig5a(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	ks := []int{1, 10, 20, 40, 60, 80, 100}
	tab := exp.NewTable("Figure 5(a): PT-k query + quality time (ms) vs k", "k", "non-sharing", "sharing", "ratio")
	for _, k := range ks {
		if k > db.NumGroups() {
			continue
		}
		var err1, err2 error
		non := exp.BenchMs(func() { err1 = evalPTKNoSharing(db, k) })
		shr := exp.BenchMs(func() { err2 = evalPTKSharing(db, k) })
		if err1 != nil {
			return err1
		}
		if err2 != nil {
			return err2
		}
		ratio := 0.0
		if non > 0 {
			ratio = shr / non
		}
		tab.AddRow(k, non, shr, ratio)
	}
	return renderTable(cfg, tab)
}

// runFig5b: the PT-k evaluation time and the *extra* time quality costs
// when sharing is on. Paper shape: the quality share falls from 33.3% at
// k=15 to 6.3% at k=100.
func runFig5b(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	return ptkVsQuality(cfg, db, "Figure 5(b): PT-k time vs extra quality time (synthetic)")
}

// runFig5d: the same on MOV. Paper shape: same trend, smaller absolute
// times (75 nonzero top-k tuples vs 579 on synthetic at k=15).
func runFig5d(cfg config) error {
	db, err := mov(cfg)
	if err != nil {
		return err
	}
	return ptkVsQuality(cfg, db, "Figure 5(d): PT-k time vs extra quality time (MOV)")
}

func ptkVsQuality(cfg config, db *uncertain.Database, title string) error {
	ks := []int{15, 30, 50, 80, 100}
	tab := exp.NewTable(title, "k", "PT-k", "quality", "quality share")
	for _, k := range ks {
		if k > db.NumGroups() {
			continue
		}
		var info *topkq.RankInfo
		var err error
		queryMs := exp.BenchMs(func() {
			info, err = topkq.TopKProbabilities(db, k)
			if err == nil {
				_ = topkq.PTK(db, info, defaultThreshold)
			}
		})
		if err != nil {
			return err
		}
		var qerr error
		qualMs := exp.BenchMs(func() { _, qerr = quality.TPFromInfo(db, info) })
		if qerr != nil {
			return qerr
		}
		share := 0.0
		if queryMs+qualMs > 0 {
			share = qualMs / (queryMs + qualMs)
		}
		tab.AddRow(k, queryMs, qualMs, fmt.Sprintf("%.1f%%", share*100))
	}
	if err := renderTable(cfg, tab); err != nil {
		return err
	}
	// The paper also reports the count of tuples with nonzero top-k
	// probability, which explains MOV's small absolute times.
	info, err := topkq.TopKProbabilities(db, defaultK)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "tuples with nonzero top-%d probability: %d\n\n", defaultK, info.NonzeroCount())
	return nil
}

// runFig5c: evaluation time of the three query semantics and the quality
// overhead, vs k. Paper shape: U-kRanks and Global-topk slightly above
// PT-k; quality the cheapest line.
func runFig5c(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	ks := []int{1, 10, 20, 40, 60, 80, 100}
	tab := exp.NewTable("Figure 5(c): query time vs quality time (ms)", "k", "U-kRanks", "Global-topk", "PT-k", "quality")
	for _, k := range ks {
		if k > db.NumGroups() {
			continue
		}
		var err1 error
		uk := exp.BenchMs(func() {
			info, e := topkq.RankProbabilities(db, k)
			if e != nil {
				err1 = e
				return
			}
			_, err1 = topkq.UKRanks(db, info)
		})
		if err1 != nil {
			return err1
		}
		gt := exp.BenchMs(func() {
			info, e := topkq.TopKProbabilities(db, k)
			if e != nil {
				err1 = e
				return
			}
			_ = topkq.GlobalTopK(db, info)
		})
		if err1 != nil {
			return err1
		}
		var info *topkq.RankInfo
		pt := exp.BenchMs(func() {
			var e error
			info, e = topkq.TopKProbabilities(db, k)
			if e != nil {
				err1 = e
				return
			}
			_ = topkq.PTK(db, info, defaultThreshold)
		})
		if err1 != nil {
			return err1
		}
		qu := exp.BenchMs(func() { _, err1 = quality.TPFromInfo(db, info) })
		if err1 != nil {
			return err1
		}
		tab.AddRow(k, uk, gt, pt, qu)
	}
	return renderTable(cfg, tab)
}
