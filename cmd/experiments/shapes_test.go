package main

// Shape tests: the paper's qualitative claims, asserted programmatically on
// the quick-sized workloads. EXPERIMENTS.md records the full-size numbers;
// these tests keep the claims true under change. Only value-based shapes
// are asserted — timing shapes are environment-dependent and are covered
// by the benchmarks instead.

import (
	"math/rand"
	"testing"

	"github.com/probdb/topkclean/internal/cleaning"
	"github.com/probdb/topkclean/internal/gen"
	"github.com/probdb/topkclean/internal/quality"
	"github.com/probdb/topkclean/internal/topkq"
	"github.com/probdb/topkclean/internal/uncertain"
)

func quickSynthetic(t *testing.T) *uncertain.Database {
	t.Helper()
	cfg := gen.DefaultSynthetic()
	cfg.NumXTuples = 500
	db, err := gen.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func quickMOV(t *testing.T) *uncertain.Database {
	t.Helper()
	cfg := gen.DefaultMOV()
	cfg.NumXTuples = 499
	db, err := gen.MOV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// Figure 4(a)/4(c): quality decreases monotonically with k on both
// workloads.
func TestShapeQualityDecreasesWithK(t *testing.T) {
	for name, db := range map[string]*uncertain.Database{
		"synthetic": quickSynthetic(t),
		"mov":       quickMOV(t),
	} {
		prev := 1.0
		for k := 1; k <= 30; k++ {
			ev, err := quality.TP(db, k)
			if err != nil {
				t.Fatal(err)
			}
			if ev.S > prev+1e-9 {
				t.Fatalf("%s: quality increased at k=%d: %v -> %v", name, k, prev, ev.S)
			}
			prev = ev.S
		}
	}
}

// Figure 4(b): tighter Gaussian pdfs yield higher quality; uniform lowest.
func TestShapePDFOrdering(t *testing.T) {
	score := func(pdf gen.PDFKind, sigma float64) float64 {
		cfg := gen.DefaultSynthetic()
		cfg.NumXTuples = 500
		cfg.PDF = pdf
		cfg.Sigma = sigma
		db, err := gen.Synthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := quality.TP(db, defaultK)
		if err != nil {
			t.Fatal(err)
		}
		return ev.S
	}
	g10 := score(gen.PDFGaussian, 10)
	g30 := score(gen.PDFGaussian, 30)
	g50 := score(gen.PDFGaussian, 50)
	g100 := score(gen.PDFGaussian, 100)
	uni := score(gen.PDFUniform, 0)
	if !(g10 > g30 && g30 > g50 && g50 > g100 && g100 > uni) {
		t.Fatalf("pdf ordering broken: G10=%v G30=%v G50=%v G100=%v U=%v", g10, g30, g50, g100, uni)
	}
}

// Section VI: MOV (2 alternatives per x-tuple) is less ambiguous than the
// synthetic workload (10 alternatives) — higher quality, fewer nonzero
// top-k tuples.
func TestShapeMOVLessAmbiguous(t *testing.T) {
	syn := quickSynthetic(t)
	mov := quickMOV(t)
	evS, err := quality.TP(syn, defaultK)
	if err != nil {
		t.Fatal(err)
	}
	evM, err := quality.TP(mov, defaultK)
	if err != nil {
		t.Fatal(err)
	}
	if !(evM.S > evS.S) {
		t.Fatalf("MOV quality %v should exceed synthetic %v", evM.S, evS.S)
	}
	iS, _ := topkq.TopKProbabilities(syn, defaultK)
	iM, _ := topkq.TopKProbabilities(mov, defaultK)
	if !(iM.NonzeroCount() < iS.NonzeroCount()) {
		t.Fatalf("MOV nonzero count %d should be below synthetic %d",
			iM.NonzeroCount(), iS.NonzeroCount())
	}
}

// Figure 6(a): planner ordering DP >= Greedy >= RandP >= RandU (random
// planners averaged over seeds), and saturation: improvement at a huge
// budget approaches |S|.
func TestShapePlannerOrderingAndSaturation(t *testing.T) {
	db := quickSynthetic(t)
	spec, err := gen.CleanSpec(db.NumGroups(), 1, 10, gen.UniformSC{Lo: 0, Hi: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cleaning.NewContext(db, defaultK, spec, 200)
	if err != nil {
		t.Fatal(err)
	}
	dpPlan, err := cleaning.DP(ctx)
	if err != nil {
		t.Fatal(err)
	}
	grPlan, err := cleaning.Greedy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dp := cleaning.ExpectedImprovement(ctx, dpPlan)
	gr := cleaning.ExpectedImprovement(ctx, grPlan)
	var rp, ru float64
	const reps = 10
	for i := 0; i < reps; i++ {
		p, err := cleaning.RandP(ctx, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		rp += cleaning.ExpectedImprovement(ctx, p) / reps
		u, err := cleaning.RandU(ctx, rand.New(rand.NewSource(int64(100+i))))
		if err != nil {
			t.Fatal(err)
		}
		ru += cleaning.ExpectedImprovement(ctx, u) / reps
	}
	if !(dp >= gr-1e-9 && gr >= rp && rp >= ru) {
		t.Fatalf("planner ordering broken: DP=%v Greedy=%v RandP=%v RandU=%v", dp, gr, rp, ru)
	}
	if gr < 0.9*dp {
		t.Fatalf("greedy (%v) should be close to optimal (%v)", gr, dp)
	}
	// Saturation at a generous budget.
	big := *ctx
	big.Budget = 500000
	bigPlan, err := cleaning.Greedy(&big)
	if err != nil {
		t.Fatal(err)
	}
	if imp := cleaning.ExpectedImprovement(&big, bigPlan); imp < 0.98*(-ctx.Eval.S) {
		t.Fatalf("saturation not reached: %v of %v", imp, -ctx.Eval.S)
	}
}

// Figure 6(c): every planner improves monotonically with the average
// sc-probability.
func TestShapeImprovementMonotoneInAvgSC(t *testing.T) {
	db := quickSynthetic(t)
	prevDP, prevGr := -1.0, -1.0
	for _, lo := range []float64{0, 0.25, 0.5, 0.75, 1} {
		spec, err := gen.CleanSpec(db.NumGroups(), 1, 10, gen.UniformSC{Lo: lo, Hi: 1}, 8)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := cleaning.NewContext(db, defaultK, spec, 100)
		if err != nil {
			t.Fatal(err)
		}
		dpPlan, err := cleaning.DP(ctx)
		if err != nil {
			t.Fatal(err)
		}
		grPlan, err := cleaning.Greedy(ctx)
		if err != nil {
			t.Fatal(err)
		}
		dp := cleaning.ExpectedImprovement(ctx, dpPlan)
		gr := cleaning.ExpectedImprovement(ctx, grPlan)
		// Tolerance: the sc-prob draws differ per sweep point (fresh pdf),
		// so allow a small dip from sampling noise, as in the paper's plot.
		if dp < prevDP*0.92 || gr < prevGr*0.92 {
			t.Fatalf("improvement dropped sharply at lo=%v: DP %v->%v, Greedy %v->%v",
				lo, prevDP, dp, prevGr, gr)
		}
		prevDP, prevGr = dp, gr
	}
}

// Figure 4(d)-(f) without the clock: the work PWR does (number of
// pw-results) explodes with k, while TP's scan length stays bounded by the
// database size — the structural reason behind the timing curves.
func TestShapePWRWorkExplodesWithK(t *testing.T) {
	db := quickSynthetic(t)
	prev := 0
	for _, k := range []int{1, 2, 3} {
		n, err := quality.PWRCount(db, k)
		if err != nil {
			t.Fatal(err)
		}
		if n <= prev {
			t.Fatalf("pw-result count did not grow: k=%d count=%d prev=%d", k, n, prev)
		}
		if k > 1 && n < prev*3 {
			t.Fatalf("pw-result growth suspiciously slow: k=%d %d vs %d", k, n, prev)
		}
		prev = n
	}
	// |Z| grows with k (Section VI: 79 -> 98 from k=15 to k=30).
	z := func(k int) int {
		ev, err := quality.TP(db, k)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, g := range ev.GroupGain {
			if g < -1e-15 {
				count++
			}
		}
		return count
	}
	if !(z(30) > z(15)) {
		t.Fatalf("|Z| did not grow with k: %d vs %d", z(15), z(30))
	}
}

// Section IV-C: sharing eliminates a full PSR pass, so the shared path
// must do strictly less work; assert via the structural proxy that both
// paths produce identical quality (the timing claim is benchmarked).
func TestShapeSharingProducesIdenticalQuality(t *testing.T) {
	db := quickSynthetic(t)
	for _, k := range []int{15, 50} {
		info, err := topkq.TopKProbabilities(db, k)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := quality.TPFromInfo(db, info)
		if err != nil {
			t.Fatal(err)
		}
		standalone, err := quality.TP(db, k)
		if err != nil {
			t.Fatal(err)
		}
		if shared.S != standalone.S {
			t.Fatalf("k=%d: shared %v != standalone %v", k, shared.S, standalone.S)
		}
	}
}
