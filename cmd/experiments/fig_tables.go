package main

import (
	"fmt"

	"github.com/probdb/topkclean/internal/exp"
	"github.com/probdb/topkclean/internal/quality"
	"github.com/probdb/topkclean/internal/testdb"
	"github.com/probdb/topkclean/internal/topkq"
	"github.com/probdb/topkclean/internal/uncertain"
)

// runTables12 reproduces the paper's running example: the pw-result
// distributions of udb1 (Figure 2, quality -2.55) and udb2 (Figure 3,
// quality -1.85) for a PT-2 query, plus the PT-2 answer {t1, t2, t5} at
// threshold 0.4.
func runTables12(cfg config) error {
	for _, c := range []struct {
		name  string
		db    *uncertain.Database
		paper float64
	}{
		{"udb1 (Table I)", testdb.UDB1(), -2.55},
		{"udb2 (Table II)", testdb.UDB2(), -1.85},
	} {
		dist, err := quality.PWRDist(c.db, 2)
		if err != nil {
			return err
		}
		tab := exp.NewTable(fmt.Sprintf("%s: pw-results of the top-2 query", c.name), "pw-result", "probability")
		for _, r := range dist {
			tab.AddRow(fmt.Sprintf("(%s)", join(r.TupleIDs)), r.Prob)
		}
		if err := renderTable(cfg, tab); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "quality S = %.6f (paper: %.2f), |R| = %d\n\n", dist.Quality(), c.paper, len(dist))
	}

	db := testdb.UDB1()
	info, err := topkq.RankProbabilities(db, 2)
	if err != nil {
		return err
	}
	ans := topkq.PTK(db, info, 0.4)
	fmt.Fprintf(cfg.out, "PT-2 answer at T=0.4 on udb1: %s (paper: {t1, t2, t5})\n\n", topkq.FormatScored(ans))
	return nil
}

func join(ids []string) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += id
	}
	return out
}
