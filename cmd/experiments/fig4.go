package main

import (
	"errors"
	"fmt"

	"github.com/probdb/topkclean/internal/exp"
	"github.com/probdb/topkclean/internal/gen"
	"github.com/probdb/topkclean/internal/quality"
	"github.com/probdb/topkclean/internal/world"
)

// runFig4a: quality vs k on the default synthetic dataset. Paper shape:
// monotone decrease from ~0 to about -140 at k=30.
func runFig4a(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	describe(cfg, "synthetic", db)
	tab := exp.NewTable("Figure 4(a): quality S vs k (synthetic)", "k", "S")
	for k := 1; k <= 30; k++ {
		ev, err := quality.TP(db, k)
		if err != nil {
			return err
		}
		tab.AddRow(k, ev.S)
	}
	return renderTable(cfg, tab)
}

// runFig4b: quality for Gaussian pdfs with sigma 10/30/50/100 and the
// uniform pdf, at k=15. Paper shape: tighter Gaussian -> higher quality;
// uniform worst.
func runFig4b(cfg config) error {
	tab := exp.NewTable("Figure 4(b): quality S vs uncertainty pdf (k=15)", "pdf", "S")
	run := func(label string, pdf gen.PDFKind, sigma float64) error {
		c := gen.DefaultSynthetic()
		c.Seed = cfg.seed
		c.PDF = pdf
		c.Sigma = sigma
		if cfg.quick {
			c.NumXTuples = 500
		}
		db, err := gen.Synthetic(c)
		if err != nil {
			return err
		}
		ev, err := quality.TP(db, defaultK)
		if err != nil {
			return err
		}
		tab.AddRow(label, ev.S)
		return nil
	}
	for _, g := range []float64{10, 30, 50, 100} {
		if err := run(fmt.Sprintf("G%.0f", g), gen.PDFGaussian, g); err != nil {
			return err
		}
	}
	if err := run("Uniform", gen.PDFUniform, 0); err != nil {
		return err
	}
	return renderTable(cfg, tab)
}

// runFig4c: quality vs k on the MOV-like dataset. Paper shape: decreasing,
// but higher (less negative) than the synthetic data at equal k because MOV
// x-tuples carry only ~2 alternatives.
func runFig4c(cfg config) error {
	db, err := mov(cfg)
	if err != nil {
		return err
	}
	describe(cfg, "MOV", db)
	tab := exp.NewTable("Figure 4(c): quality S vs k (MOV)", "k", "S")
	for k := 1; k <= 30; k++ {
		ev, err := quality.TP(db, k)
		if err != nil {
			return err
		}
		tab.AddRow(k, ev.S)
	}
	return renderTable(cfg, tab)
}

// pwrResultCap bounds PWR work in the harness, standing in for the paper's
// experiment timeouts ("PWR cannot return the quality score in a
// reasonable time").
func pwrResultCap(cfg config) int {
	if cfg.quick {
		return 3_000_000
	}
	return 20_000_000
}

// runFig4d: quality computation time on small databases at k=5, comparing
// PW, PWR, and TP. Paper shape: PW explodes immediately (36 minutes at 100
// tuples); PWR polynomial; TP flat.
func runFig4d(cfg config) error {
	sizes := []int{10, 30, 50, 70, 100, 500, 1000, 10000}
	if cfg.quick {
		sizes = []int{10, 30, 50, 100, 1000}
	}
	const k = 5
	tab := exp.NewTable("Figure 4(d): quality time (ms) vs DB size, k=5", "tuples", "PW", "PWR", "TP")
	for _, n := range sizes {
		db, err := syntheticSized(cfg, n)
		if err != nil {
			return err
		}
		if db.NumGroups() < k {
			continue
		}
		pwCell := "-"
		if world.Enumerable(db) {
			ms := exp.TimeMs(func() {
				if _, err2 := quality.PW(db, k); err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return err
			}
			pwCell = fmt.Sprintf("%.3f", ms)
		}
		pwrCell := "-"
		{
			var perr error
			ms := exp.TimeMs(func() { _, perr = quality.PWRLimited(db, k, pwrResultCap(cfg)) })
			switch {
			case perr == nil:
				pwrCell = fmt.Sprintf("%.3f", ms)
			case errors.Is(perr, quality.ErrResultLimit):
				pwrCell = ">cap"
			default:
				return perr
			}
		}
		var terr error
		tpMs := exp.BenchMs(func() { _, terr = quality.TP(db, k) })
		if terr != nil {
			return terr
		}
		tab.AddRow(n, pwCell, pwrCell, tpMs)
	}
	return renderTable(cfg, tab)
}

// runFig4e: quality time on large databases at k=15: PWR vs TP. Paper
// shape: PWR blows up quickly; TP linear in n.
func runFig4e(cfg config) error {
	sizes := []int{1000, 5000, 10000, 50000, 100000, 1000000}
	if cfg.quick {
		sizes = []int{1000, 10000, 100000}
	}
	tab := exp.NewTable("Figure 4(e): quality time (ms) vs DB size, k=15", "tuples", "PWR", "TP")
	for _, n := range sizes {
		db, err := syntheticSized(cfg, n)
		if err != nil {
			return err
		}
		if db.NumGroups() < defaultK {
			continue
		}
		pwrCell := "-"
		if n <= 5000 {
			var perr error
			ms := exp.TimeMs(func() { _, perr = quality.PWRLimited(db, defaultK, pwrResultCap(cfg)) })
			switch {
			case perr == nil:
				pwrCell = fmt.Sprintf("%.3f", ms)
			case errors.Is(perr, quality.ErrResultLimit):
				pwrCell = ">cap"
			default:
				return perr
			}
		}
		var terr error
		tpMs := exp.BenchMs(func() { _, terr = quality.TP(db, defaultK) })
		if terr != nil {
			return terr
		}
		tab.AddRow(n, pwrCell, tpMs)
	}
	return renderTable(cfg, tab)
}

// runFig4f: quality time vs k on the default synthetic dataset: PWR vs TP.
// Paper shape: PWR exponential in k (unusable past small k); TP linear.
func runFig4f(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	ks := []int{1, 2, 3, 5, 10, 100, 1000}
	if cfg.quick {
		ks = []int{1, 2, 3, 10, 100}
	}
	tab := exp.NewTable("Figure 4(f): quality time (ms) vs k (synthetic)", "k", "PWR", "TP")
	for _, k := range ks {
		if k > db.NumGroups() {
			continue
		}
		pwrCell := "-"
		if k <= 5 {
			var perr error
			ms := exp.TimeMs(func() { _, perr = quality.PWRLimited(db, k, pwrResultCap(cfg)) })
			switch {
			case perr == nil:
				pwrCell = fmt.Sprintf("%.3f", ms)
			case errors.Is(perr, quality.ErrResultLimit):
				pwrCell = ">cap"
			default:
				return perr
			}
		}
		var terr error
		tpMs := exp.BenchMs(func() { _, terr = quality.TP(db, k) })
		if terr != nil {
			return terr
		}
		tab.AddRow(k, pwrCell, tpMs)
	}
	return renderTable(cfg, tab)
}
