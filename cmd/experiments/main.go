// Command experiments regenerates every table and figure of the paper's
// evaluation section (Section VI) and prints the series as aligned text
// tables. Absolute times differ from the paper's C++/i5 testbed; the
// shapes (who wins, by what factor, where curves cross) are what this
// harness reproduces. See EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
//
// Usage:
//
//	experiments -fig all            # everything (several minutes)
//	experiments -fig 4a,4b,6a       # selected figures
//	experiments -fig tables12       # the udb1/udb2 running example
//	experiments -fig all -quick     # reduced sizes (~seconds, CI-friendly)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/probdb/topkclean/internal/exp"
)

// figure is one reproducible experiment.
type figure struct {
	name string
	desc string
	run  func(cfg config) error
}

// config carries the global harness options.
type config struct {
	quick  bool
	seed   int64
	format string // "text" (default) or "csv"
	out    io.Writer
}

func main() {
	figFlag := flag.String("fig", "all", "comma-separated figure ids (4a..4f, 5a..5d, 6a..6g, tables12) or 'all'")
	quick := flag.Bool("quick", false, "reduced dataset sizes and sweeps (for CI and smoke tests)")
	seed := flag.Int64("seed", 1, "base random seed for data generation")
	format := flag.String("format", "text", "output format: text | csv")
	list := flag.Bool("list", false, "list available figures and exit")
	flag.Parse()

	figs := allFigures()
	if *list {
		for _, f := range figs {
			fmt.Printf("%-9s %s\n", f.name, f.desc)
		}
		return
	}
	cfg := config{quick: *quick, seed: *seed, format: *format, out: os.Stdout}

	want := map[string]bool{}
	runAll := *figFlag == "all"
	if !runAll {
		for _, name := range strings.Split(*figFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	known := map[string]bool{}
	for _, f := range figs {
		known[f.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", name)
			os.Exit(2)
		}
	}
	for _, f := range figs {
		if !runAll && !want[f.name] {
			continue
		}
		fmt.Fprintf(cfg.out, "=== %s: %s ===\n\n", f.name, f.desc)
		if err := f.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f.name, err)
			os.Exit(1)
		}
	}
}

func allFigures() []figure {
	return []figure{
		{"tables12", "running example: pw-results and quality of udb1/udb2 (Figures 2-3)", runTables12},
		{"4a", "quality vs k, synthetic (Figure 4a)", runFig4a},
		{"4b", "quality vs uncertainty pdf (Figure 4b)", runFig4b},
		{"4c", "quality vs k, MOV (Figure 4c)", runFig4c},
		{"4d", "quality time vs DB size, small, k=5: PW vs PWR vs TP (Figure 4d)", runFig4d},
		{"4e", "quality time vs DB size, large, k=15: PWR vs TP (Figure 4e)", runFig4e},
		{"4f", "quality time vs k: PWR vs TP (Figure 4f)", runFig4f},
		{"5a", "query+quality time, sharing vs non-sharing (Figure 5a)", runFig5a},
		{"5b", "PT-k time vs extra quality time (Figure 5b)", runFig5b},
		{"5c", "U-kRanks/Global-topk/PT-k time vs quality time (Figure 5c)", runFig5c},
		{"5d", "PT-k time vs quality time, MOV (Figure 5d)", runFig5d},
		{"6a", "expected improvement vs budget C, synthetic (Figure 6a)", runFig6a},
		{"6b", "expected improvement vs sc-pdf (Figure 6b)", runFig6b},
		{"6c", "expected improvement vs avg sc-probability (Figure 6c)", runFig6c},
		{"6d", "planning time vs budget C (Figure 6d)", runFig6d},
		{"6e", "planning time vs k (Figure 6e)", runFig6e},
		{"6f", "expected improvement vs budget C, MOV (Figure 6f)", runFig6f},
		{"6g", "expected improvement vs avg sc-probability, MOV (Figure 6g)", runFig6g},
	}
}

// renderTable writes a figure table in the configured output format.
func renderTable(cfg config, tab *exp.Table) error {
	if cfg.format == "csv" {
		return tab.RenderCSV(cfg.out)
	}
	return tab.Render(cfg.out)
}
