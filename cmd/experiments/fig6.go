package main

import (
	"context"
	"fmt"

	topkclean "github.com/probdb/topkclean"
	"github.com/probdb/topkclean/internal/exp"
	"github.com/probdb/topkclean/internal/gen"
	"github.com/probdb/topkclean/internal/uncertain"
)

// randReps is how many seeds the random planners are averaged over (their
// single-run improvement is noisy).
const randReps = 5

// planWith resolves a planner from the public registry, seeds it when it
// is randomized, and plans on c. The experiments go through the same
// registry as library users so the figures measure the shipped path.
func planWith(name string, seed int64, c *topkclean.CleaningContext) (topkclean.CleaningPlan, error) {
	p, err := topkclean.PlannerWithSeed(name, seed)
	if err != nil {
		return nil, err
	}
	return p.Plan(context.Background(), c)
}

// cleaningEngine builds a session engine on db for query size k; each
// figure reuses one engine so the TP evaluation behind every budget/pdf
// point is computed exactly once.
func cleaningEngine(db *uncertain.Database, k int) (*topkclean.Engine, error) {
	return topkclean.New(db, topkclean.WithK(k))
}

// cleaningContext prepares a planning context on the engine with the
// paper's default cleaning environment (costs U[1,10]) and budget.
func cleaningContext(cfg config, eng *topkclean.Engine, budget int, pdf gen.SCPdf) (*topkclean.CleaningContext, error) {
	spec, err := gen.CleanSpec(eng.DB().NumGroups(), 1, 10, pdf, cfg.seed+7)
	if err != nil {
		return nil, err
	}
	return eng.CleaningContext(context.Background(), spec, budget)
}

// improvements runs all four planners on the context and returns their
// expected improvements (random ones averaged over randReps seeds).
func improvements(ctx *topkclean.CleaningContext) (dp, greedy, randP, randU float64, err error) {
	dpPlan, err := planWith("dp", 0, ctx)
	if err != nil {
		return
	}
	dp = topkclean.ExpectedImprovement(ctx, dpPlan)
	grPlan, err := planWith("greedy", 0, ctx)
	if err != nil {
		return
	}
	greedy = topkclean.ExpectedImprovement(ctx, grPlan)
	for i := 0; i < randReps; i++ {
		var p topkclean.CleaningPlan
		p, err = planWith("randp", int64(100+i), ctx)
		if err != nil {
			return
		}
		randP += topkclean.ExpectedImprovement(ctx, p) / randReps
		p, err = planWith("randu", int64(200+i), ctx)
		if err != nil {
			return
		}
		randU += topkclean.ExpectedImprovement(ctx, p) / randReps
	}
	return
}

// budgetSweep is the log-spaced budget axis of Figures 6(a)/6(d)/6(f).
func budgetSweep(cfg config) []int {
	if cfg.quick {
		return []int{1, 10, 100, 1000}
	}
	return []int{1, 10, 100, 1000, 10000, 100000}
}

// runFig6a: expected improvement vs budget on the synthetic dataset.
// Paper shape: DP >= Greedy (nearly equal) >= RandP >= RandU; saturation
// toward |S| for large C.
func runFig6a(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	return improvementVsBudget(cfg, db, "Figure 6(a): expected improvement I vs budget C (synthetic, k=15)")
}

// runFig6f: the same on MOV.
func runFig6f(cfg config) error {
	db, err := mov(cfg)
	if err != nil {
		return err
	}
	return improvementVsBudget(cfg, db, "Figure 6(f): expected improvement I vs budget C (MOV, k=15)")
}

func improvementVsBudget(cfg config, db *uncertain.Database, title string) error {
	eng, err := cleaningEngine(db, defaultK)
	if err != nil {
		return err
	}
	s, err := eng.Quality(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "initial quality S = %.6f (paper synthetic: -66.797551); max possible I = %.6f\n\n", s, -s)
	tab := exp.NewTable(title, "C", "DP", "Greedy", "RandP", "RandU")
	for _, c := range budgetSweep(cfg) {
		ctx, err := cleaningContext(cfg, eng, c, gen.UniformSC{Lo: 0, Hi: 1})
		if err != nil {
			return err
		}
		dp, gr, rp, ru, err := improvements(ctx)
		if err != nil {
			return err
		}
		tab.AddRow(c, dp, gr, rp, ru)
	}
	return renderTable(cfg, tab)
}

// runFig6b: expected improvement under different sc-pdfs at C=100. Paper
// shape: DP/Greedy grow with the sc-pdf's variance (more x-tuples with
// high sc-probability to exploit); RandP/RandU roughly flat.
func runFig6b(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	eng, err := cleaningEngine(db, defaultK)
	if err != nil {
		return err
	}
	pdfs := []gen.SCPdf{
		gen.NormalSC{Mean: 0.5, Sigma: 0.13},
		gen.NormalSC{Mean: 0.5, Sigma: 0.167},
		gen.NormalSC{Mean: 0.5, Sigma: 0.3},
		gen.UniformSC{Lo: 0, Hi: 1},
	}
	tab := exp.NewTable("Figure 6(b): expected improvement I vs sc-pdf (C=100)", "sc-pdf", "DP", "Greedy", "RandP", "RandU")
	for _, pdf := range pdfs {
		ctx, err := cleaningContext(cfg, eng, 100, pdf)
		if err != nil {
			return err
		}
		dp, gr, rp, ru, err := improvements(ctx)
		if err != nil {
			return err
		}
		tab.AddRow(pdf.String(), dp, gr, rp, ru)
	}
	return renderTable(cfg, tab)
}

// runFig6c: expected improvement vs average sc-probability (sc-pdf
// U[x, 1]). Paper shape: every planner improves as the average grows.
func runFig6c(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	return improvementVsAvgSC(cfg, db, "Figure 6(c): expected improvement I vs avg sc-probability (synthetic, C=100)")
}

// runFig6g: the same on MOV.
func runFig6g(cfg config) error {
	db, err := mov(cfg)
	if err != nil {
		return err
	}
	return improvementVsAvgSC(cfg, db, "Figure 6(g): expected improvement I vs avg sc-probability (MOV, C=100)")
}

func improvementVsAvgSC(cfg config, db *uncertain.Database, title string) error {
	eng, err := cleaningEngine(db, defaultK)
	if err != nil {
		return err
	}
	tab := exp.NewTable(title, "avg sc-prob", "DP", "Greedy", "RandP", "RandU")
	for _, lo := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		ctx, err := cleaningContext(cfg, eng, 100, gen.UniformSC{Lo: lo, Hi: 1})
		if err != nil {
			return err
		}
		dp, gr, rp, ru, err := improvements(ctx)
		if err != nil {
			return err
		}
		tab.AddRow((1+lo)/2, dp, gr, rp, ru)
	}
	return renderTable(cfg, tab)
}

// runFig6d: planning time vs budget. Paper shape: DP far above the
// heuristics and growing ~quadratically with C; Greedy above RandP above
// RandU.
func runFig6d(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	eng, err := cleaningEngine(db, defaultK)
	if err != nil {
		return err
	}
	tab := exp.NewTable("Figure 6(d): planning time (ms) vs budget C", "C", "DP", "Greedy", "RandP", "RandU")
	for _, c := range budgetSweep(cfg) {
		ctx, err := cleaningContext(cfg, eng, c, gen.UniformSC{Lo: 0, Hi: 1})
		if err != nil {
			return err
		}
		var perr error
		dpMs := exp.TimeMs(func() { _, perr = planWith("dp", 0, ctx) })
		if perr != nil {
			return perr
		}
		grMs := exp.BenchMs(func() { _, perr = planWith("greedy", 0, ctx) })
		if perr != nil {
			return perr
		}
		rpMs := exp.BenchMs(func() { _, perr = planWith("randp", 1, ctx) })
		if perr != nil {
			return perr
		}
		ruMs := exp.BenchMs(func() { _, perr = planWith("randu", 1, ctx) })
		if perr != nil {
			return perr
		}
		tab.AddRow(c, dpMs, grMs, rpMs, ruMs)
	}
	return renderTable(cfg, tab)
}

// runFig6e: planning time vs k at C=100. Paper shape: DP and Greedy grow
// mildly with k (|Z| grows: 79 at k=15 to 98 at k=30); the random planners
// are flat.
func runFig6e(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	tab := exp.NewTable("Figure 6(e): planning time (ms) vs k (C=100)", "k", "|Z|", "DP", "Greedy", "RandP", "RandU")
	for _, k := range []int{5, 10, 15, 20, 25, 30} {
		if k > db.NumGroups() {
			continue
		}
		eng, err := cleaningEngine(db, k)
		if err != nil {
			return err
		}
		ctx, err := cleaningContext(cfg, eng, 100, gen.UniformSC{Lo: 0, Hi: 1})
		if err != nil {
			return err
		}
		// |Z|: x-tuples with nonzero gain (Lemma 5's candidate set).
		z := 0
		for _, g := range ctx.Eval.GroupGain {
			if g < -1e-15 {
				z++
			}
		}
		var perr error
		dpMs := exp.BenchMs(func() { _, perr = planWith("dp", 0, ctx) })
		if perr != nil {
			return perr
		}
		grMs := exp.BenchMs(func() { _, perr = planWith("greedy", 0, ctx) })
		if perr != nil {
			return perr
		}
		rpMs := exp.BenchMs(func() { _, perr = planWith("randp", 1, ctx) })
		if perr != nil {
			return perr
		}
		ruMs := exp.BenchMs(func() { _, perr = planWith("randu", 1, ctx) })
		if perr != nil {
			return perr
		}
		tab.AddRow(k, z, dpMs, grMs, rpMs, ruMs)
	}
	return renderTable(cfg, tab)
}
