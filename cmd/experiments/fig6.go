package main

import (
	"fmt"
	"math/rand"

	"github.com/probdb/topkclean/internal/cleaning"
	"github.com/probdb/topkclean/internal/exp"
	"github.com/probdb/topkclean/internal/gen"
	"github.com/probdb/topkclean/internal/quality"
	"github.com/probdb/topkclean/internal/uncertain"
)

// randReps is how many seeds the random planners are averaged over (their
// single-run improvement is noisy).
const randReps = 5

// cleaningContext prepares a planning context on db with the paper's
// default cleaning environment (costs U[1,10], sc-pdf U[0,1]) and budget.
func cleaningContext(cfg config, db *uncertain.Database, k, budget int, pdf gen.SCPdf) (*cleaning.Context, error) {
	spec, err := gen.CleanSpec(db.NumGroups(), 1, 10, pdf, cfg.seed+7)
	if err != nil {
		return nil, err
	}
	return cleaning.NewContext(db, k, spec, budget)
}

// improvements runs all four planners on the context and returns their
// expected improvements (random ones averaged over randReps seeds).
func improvements(ctx *cleaning.Context) (dp, greedy, randP, randU float64, err error) {
	dpPlan, err := cleaning.DP(ctx)
	if err != nil {
		return
	}
	dp = cleaning.ExpectedImprovement(ctx, dpPlan)
	grPlan, err := cleaning.Greedy(ctx)
	if err != nil {
		return
	}
	greedy = cleaning.ExpectedImprovement(ctx, grPlan)
	for i := 0; i < randReps; i++ {
		var p cleaning.Plan
		p, err = cleaning.RandP(ctx, rand.New(rand.NewSource(int64(100+i))))
		if err != nil {
			return
		}
		randP += cleaning.ExpectedImprovement(ctx, p) / randReps
		p, err = cleaning.RandU(ctx, rand.New(rand.NewSource(int64(200+i))))
		if err != nil {
			return
		}
		randU += cleaning.ExpectedImprovement(ctx, p) / randReps
	}
	return
}

// budgetSweep is the log-spaced budget axis of Figures 6(a)/6(d)/6(f).
func budgetSweep(cfg config) []int {
	if cfg.quick {
		return []int{1, 10, 100, 1000}
	}
	return []int{1, 10, 100, 1000, 10000, 100000}
}

// runFig6a: expected improvement vs budget on the synthetic dataset.
// Paper shape: DP >= Greedy (nearly equal) >= RandP >= RandU; saturation
// toward |S| for large C.
func runFig6a(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	return improvementVsBudget(cfg, db, "Figure 6(a): expected improvement I vs budget C (synthetic, k=15)")
}

// runFig6f: the same on MOV.
func runFig6f(cfg config) error {
	db, err := mov(cfg)
	if err != nil {
		return err
	}
	return improvementVsBudget(cfg, db, "Figure 6(f): expected improvement I vs budget C (MOV, k=15)")
}

func improvementVsBudget(cfg config, db *uncertain.Database, title string) error {
	ev, err := quality.TP(db, defaultK)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "initial quality S = %.6f (paper synthetic: -66.797551); max possible I = %.6f\n\n", ev.S, -ev.S)
	tab := exp.NewTable(title, "C", "DP", "Greedy", "RandP", "RandU")
	for _, c := range budgetSweep(cfg) {
		ctx, err := cleaningContext(cfg, db, defaultK, c, gen.UniformSC{Lo: 0, Hi: 1})
		if err != nil {
			return err
		}
		dp, gr, rp, ru, err := improvements(ctx)
		if err != nil {
			return err
		}
		tab.AddRow(c, dp, gr, rp, ru)
	}
	return renderTable(cfg, tab)
}

// runFig6b: expected improvement under different sc-pdfs at C=100. Paper
// shape: DP/Greedy grow with the sc-pdf's variance (more x-tuples with
// high sc-probability to exploit); RandP/RandU roughly flat.
func runFig6b(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	pdfs := []gen.SCPdf{
		gen.NormalSC{Mean: 0.5, Sigma: 0.13},
		gen.NormalSC{Mean: 0.5, Sigma: 0.167},
		gen.NormalSC{Mean: 0.5, Sigma: 0.3},
		gen.UniformSC{Lo: 0, Hi: 1},
	}
	tab := exp.NewTable("Figure 6(b): expected improvement I vs sc-pdf (C=100)", "sc-pdf", "DP", "Greedy", "RandP", "RandU")
	for _, pdf := range pdfs {
		ctx, err := cleaningContext(cfg, db, defaultK, 100, pdf)
		if err != nil {
			return err
		}
		dp, gr, rp, ru, err := improvements(ctx)
		if err != nil {
			return err
		}
		tab.AddRow(pdf.String(), dp, gr, rp, ru)
	}
	return renderTable(cfg, tab)
}

// runFig6c: expected improvement vs average sc-probability (sc-pdf
// U[x, 1]). Paper shape: every planner improves as the average grows.
func runFig6c(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	return improvementVsAvgSC(cfg, db, "Figure 6(c): expected improvement I vs avg sc-probability (synthetic, C=100)")
}

// runFig6g: the same on MOV.
func runFig6g(cfg config) error {
	db, err := mov(cfg)
	if err != nil {
		return err
	}
	return improvementVsAvgSC(cfg, db, "Figure 6(g): expected improvement I vs avg sc-probability (MOV, C=100)")
}

func improvementVsAvgSC(cfg config, db *uncertain.Database, title string) error {
	tab := exp.NewTable(title, "avg sc-prob", "DP", "Greedy", "RandP", "RandU")
	for _, lo := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		ctx, err := cleaningContext(cfg, db, defaultK, 100, gen.UniformSC{Lo: lo, Hi: 1})
		if err != nil {
			return err
		}
		dp, gr, rp, ru, err := improvements(ctx)
		if err != nil {
			return err
		}
		tab.AddRow((1+lo)/2, dp, gr, rp, ru)
	}
	return renderTable(cfg, tab)
}

// runFig6d: planning time vs budget. Paper shape: DP far above the
// heuristics and growing ~quadratically with C; Greedy above RandP above
// RandU.
func runFig6d(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	tab := exp.NewTable("Figure 6(d): planning time (ms) vs budget C", "C", "DP", "Greedy", "RandP", "RandU")
	for _, c := range budgetSweep(cfg) {
		ctx, err := cleaningContext(cfg, db, defaultK, c, gen.UniformSC{Lo: 0, Hi: 1})
		if err != nil {
			return err
		}
		var perr error
		dpMs := exp.TimeMs(func() { _, perr = cleaning.DP(ctx) })
		if perr != nil {
			return perr
		}
		grMs := exp.BenchMs(func() { _, perr = cleaning.Greedy(ctx) })
		if perr != nil {
			return perr
		}
		rng := rand.New(rand.NewSource(1))
		rpMs := exp.BenchMs(func() { _, perr = cleaning.RandP(ctx, rng) })
		if perr != nil {
			return perr
		}
		ruMs := exp.BenchMs(func() { _, perr = cleaning.RandU(ctx, rng) })
		if perr != nil {
			return perr
		}
		tab.AddRow(c, dpMs, grMs, rpMs, ruMs)
	}
	return renderTable(cfg, tab)
}

// runFig6e: planning time vs k at C=100. Paper shape: DP and Greedy grow
// mildly with k (|Z| grows: 79 at k=15 to 98 at k=30); the random planners
// are flat.
func runFig6e(cfg config) error {
	db, err := synthetic(cfg)
	if err != nil {
		return err
	}
	tab := exp.NewTable("Figure 6(e): planning time (ms) vs k (C=100)", "k", "|Z|", "DP", "Greedy", "RandP", "RandU")
	for _, k := range []int{5, 10, 15, 20, 25, 30} {
		if k > db.NumGroups() {
			continue
		}
		ctx, err := cleaningContext(cfg, db, k, 100, gen.UniformSC{Lo: 0, Hi: 1})
		if err != nil {
			return err
		}
		// |Z|: x-tuples with nonzero gain (Lemma 5's candidate set).
		z := 0
		for _, g := range ctx.Eval.GroupGain {
			if g < -1e-15 {
				z++
			}
		}
		var perr error
		dpMs := exp.BenchMs(func() { _, perr = cleaning.DP(ctx) })
		if perr != nil {
			return perr
		}
		grMs := exp.BenchMs(func() { _, perr = cleaning.Greedy(ctx) })
		if perr != nil {
			return perr
		}
		rng := rand.New(rand.NewSource(1))
		rpMs := exp.BenchMs(func() { _, perr = cleaning.RandP(ctx, rng) })
		if perr != nil {
			return perr
		}
		ruMs := exp.BenchMs(func() { _, perr = cleaning.RandU(ctx, rng) })
		if perr != nil {
			return perr
		}
		tab.AddRow(k, z, dpMs, grMs, rpMs, ruMs)
	}
	return renderTable(cfg, tab)
}
