package main

import (
	"fmt"

	"github.com/probdb/topkclean/internal/gen"
	"github.com/probdb/topkclean/internal/uncertain"
)

// defaultK is the paper's default query size.
const defaultK = 15

// defaultThreshold is the paper's default PT-k threshold.
const defaultThreshold = 0.1

// synthetic returns the default synthetic dataset, scaled down in quick
// mode (500 x-tuples instead of 5000).
func synthetic(cfg config) (*uncertain.Database, error) {
	c := gen.DefaultSynthetic()
	c.Seed = cfg.seed
	if cfg.quick {
		c.NumXTuples = 500
	}
	return gen.Synthetic(c)
}

// syntheticSized returns the synthetic dataset with the given number of
// tuples (x-tuples = tuples/10).
func syntheticSized(cfg config, tuples int) (*uncertain.Database, error) {
	x := tuples / 10
	if x < 1 {
		x = 1
	}
	return gen.SyntheticSized(x, cfg.seed)
}

// mov returns the MOV-like dataset, scaled down in quick mode.
func mov(cfg config) (*uncertain.Database, error) {
	c := gen.DefaultMOV()
	c.Seed = cfg.seed + 100
	if cfg.quick {
		c.NumXTuples = 499
	}
	return gen.MOV(c)
}

// describe prints a one-line dataset summary so readers can relate the
// series to the paper's setup.
func describe(cfg config, name string, db *uncertain.Database) {
	fmt.Fprintf(cfg.out, "dataset %s: %s\n\n", name, db.ComputeStats())
}
