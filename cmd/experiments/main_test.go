package main

import (
	"strings"
	"testing"
)

// tinyConfig is smaller than -quick: enough to exercise every code path of
// every figure in CI time.
func tinyConfig(out *strings.Builder) config {
	return config{quick: true, seed: 1, out: out}
}

func TestAllFiguresRegistered(t *testing.T) {
	figs := allFigures()
	want := []string{"tables12", "4a", "4b", "4c", "4d", "4e", "4f",
		"5a", "5b", "5c", "5d", "6a", "6b", "6c", "6d", "6e", "6f", "6g"}
	if len(figs) != len(want) {
		t.Fatalf("registered %d figures, want %d", len(figs), len(want))
	}
	for i, name := range want {
		if figs[i].name != name {
			t.Errorf("figure %d = %s, want %s", i, figs[i].name, name)
		}
		if figs[i].desc == "" || figs[i].run == nil {
			t.Errorf("figure %s incomplete", name)
		}
	}
}

func TestTables12Output(t *testing.T) {
	var out strings.Builder
	if err := runTables12(tinyConfig(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"quality S = -2.551326",
		"quality S = -1.852241",
		"|R| = 7",
		"|R| = 4",
		"{t1, t2, t5}",
		"(t1,t2)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("tables12 output missing %q", want)
		}
	}
}

// TestEveryFigureRunsQuick executes each figure generator end to end on the
// quick configuration and sanity-checks that a table was rendered.
func TestEveryFigureRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of figure generation")
	}
	for _, f := range allFigures() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			var out strings.Builder
			if err := f.run(tinyConfig(&out)); err != nil {
				t.Fatalf("figure %s: %v", f.name, err)
			}
			s := out.String()
			if !strings.Contains(s, "--") {
				t.Fatalf("figure %s rendered no table:\n%s", f.name, s)
			}
		})
	}
}

func TestFig4aQualityDecreases(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	if err := runFig4a(cfg); err != nil {
		t.Fatal(err)
	}
	// The last data row (k=30) must be more negative than the first (k=1).
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	var first, last string
	for _, ln := range lines {
		fields := strings.Fields(ln)
		if len(fields) == 2 && fields[0] == "1" {
			first = fields[1]
		}
		if len(fields) == 2 && fields[0] == "30" {
			last = fields[1]
		}
	}
	if first == "" || last == "" {
		t.Fatalf("could not locate k=1 / k=30 rows:\n%s", out.String())
	}
	if !strings.HasPrefix(first, "-") || !strings.HasPrefix(last, "-") {
		t.Fatalf("quality rows not negative: %s, %s", first, last)
	}
}

func TestDescribePrintsStats(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	db, err := synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	describe(cfg, "synthetic", db)
	if !strings.Contains(out.String(), "x-tuples=500") {
		t.Fatalf("describe output unexpected: %s", out.String())
	}
}

func TestJoinHelper(t *testing.T) {
	if join(nil) != "" {
		t.Error("join(nil) should be empty")
	}
	if join([]string{"a"}) != "a" {
		t.Error("join single")
	}
	if join([]string{"a", "b", "c"}) != "a,b,c" {
		t.Error("join multiple")
	}
}

func TestPwrResultCap(t *testing.T) {
	if pwrResultCap(config{quick: true}) >= pwrResultCap(config{}) {
		t.Error("quick cap should be smaller than the full cap")
	}
}
